/**
 * @file
 * Parameterized correctness tests run against ALL seven STM
 * implementations x both metadata placements: read-your-writes,
 * atomicity under contention, isolation, abort statistics, capacity
 * enforcement. These are the core invariants every member of the
 * taxonomy must uphold.
 */

#include <gtest/gtest.h>

#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;
using pimstm::runtime::SharedArray32;

namespace
{

struct Param
{
    StmKind kind;
    MetadataTier tier;
};

std::string
paramName(const testing::TestParamInfo<Param> &info)
{
    std::string s = stmKindName(info.param.kind);
    s += info.param.tier == MetadataTier::Wram ? "_WRAM" : "_MRAM";
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

std::vector<Param>
allParams()
{
    std::vector<Param> ps;
    for (StmKind k : allStmKinds()) {
        ps.push_back({k, MetadataTier::Mram});
        ps.push_back({k, MetadataTier::Wram});
    }
    return ps;
}

DpuConfig
smallDpu(u64 seed = 7)
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    cfg.seed = seed;
    return cfg;
}

StmConfig
baseCfg(const Param &p, unsigned tasklets)
{
    StmConfig cfg;
    cfg.kind = p.kind;
    cfg.metadata_tier = p.tier;
    cfg.num_tasklets = tasklets;
    cfg.max_read_set = 128;
    cfg.max_write_set = 64;
    cfg.data_words_hint = 1024;
    return cfg;
}

class StmAll : public testing::TestWithParam<Param>
{
};

} // namespace

TEST_P(StmAll, SingleTaskletReadWriteCommit)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), 1));
    SharedArray32 arr(dpu, Tier::Mram, 16);
    arr.fill(dpu, 0);

    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx, [&](TxHandle &tx) {
            tx.write(arr.at(3), 77);
            tx.write(arr.at(5), 88);
        });
    });
    dpu.run();
    EXPECT_EQ(arr.peek(dpu, 3), 77u);
    EXPECT_EQ(arr.peek(dpu, 5), 88u);
    EXPECT_EQ(stm->stats().commits, 1u);
    EXPECT_EQ(stm->stats().aborts, 0u);
}

TEST_P(StmAll, ReadYourOwnWrites)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), 1));
    SharedArray32 arr(dpu, Tier::Mram, 8);
    arr.fill(dpu, 5);

    u32 seen_before = 0, seen_after = 0, seen_updated = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx, [&](TxHandle &tx) {
            seen_before = tx.read(arr.at(0));
            tx.write(arr.at(0), 100);
            seen_after = tx.read(arr.at(0));
            tx.write(arr.at(0), 200);
            seen_updated = tx.read(arr.at(0));
        });
    });
    dpu.run();
    EXPECT_EQ(seen_before, 5u);
    EXPECT_EQ(seen_after, 100u);
    EXPECT_EQ(seen_updated, 200u);
    EXPECT_EQ(arr.peek(dpu, 0), 200u);
}

TEST_P(StmAll, CounterIncrementsAreAtomic)
{
    // The canonical STM litmus: N tasklets x K increments each on one
    // shared counter must end exactly at N*K.
    constexpr unsigned kTasklets = 8;
    constexpr unsigned kIncs = 25;

    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), kTasklets));
    SharedArray32 arr(dpu, Tier::Mram, 4);
    arr.fill(dpu, 0);

    dpu.addTasklets(kTasklets, [&](DpuContext &ctx) {
        for (unsigned i = 0; i < kIncs; ++i) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(0), tx.read(arr.at(0)) + 1);
            });
        }
    });
    dpu.run();
    EXPECT_EQ(arr.peek(dpu, 0), kTasklets * kIncs);
    EXPECT_EQ(stm->stats().commits, kTasklets * kIncs);
}

TEST_P(StmAll, BankTransferPreservesTotal)
{
    // Transfers between random accounts: the sum is invariant in every
    // committed state. This exercises multi-location atomicity and the
    // abort/undo paths hard.
    constexpr unsigned kTasklets = 6;
    constexpr unsigned kOps = 30;
    constexpr u32 kAccounts = 16;
    constexpr u32 kInitial = 1000;

    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), kTasklets));
    SharedArray32 acc(dpu, Tier::Mram, kAccounts);
    acc.fill(dpu, kInitial);

    dpu.addTasklets(kTasklets, [&](DpuContext &ctx) {
        for (unsigned i = 0; i < kOps; ++i) {
            const u32 from = static_cast<u32>(ctx.rng().below(kAccounts));
            u32 to = static_cast<u32>(ctx.rng().below(kAccounts));
            if (to == from)
                to = (to + 1) % kAccounts;
            const u32 amount = static_cast<u32>(ctx.rng().range(1, 10));
            atomically(*stm, ctx, [&](TxHandle &tx) {
                const u32 f = tx.read(acc.at(from));
                const u32 t = tx.read(acc.at(to));
                tx.write(acc.at(from), f - amount);
                tx.write(acc.at(to), t + amount);
            });
        }
    });
    dpu.run();

    u64 total = 0;
    for (u32 i = 0; i < kAccounts; ++i)
        total += acc.peek(dpu, i);
    EXPECT_EQ(total, static_cast<u64>(kAccounts) * kInitial);
    EXPECT_EQ(stm->stats().commits, kTasklets * kOps);
}

TEST_P(StmAll, ReadOnlyTransactionsSeeConsistentSnapshots)
{
    // Writers keep two cells equal; readers must never observe them
    // differing (opacity-style consistency of committed state).
    constexpr unsigned kWriters = 3;
    constexpr unsigned kReaders = 3;

    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), kWriters + kReaders));
    SharedArray32 arr(dpu, Tier::Mram, 2);
    arr.fill(dpu, 0);

    bool inconsistent = false;
    for (unsigned w = 0; w < kWriters; ++w) {
        dpu.addTasklet([&](DpuContext &ctx) {
            for (int i = 0; i < 20; ++i) {
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    const u32 v = tx.read(arr.at(0));
                    tx.write(arr.at(0), v + 1);
                    tx.write(arr.at(1), v + 1);
                });
            }
        });
    }
    for (unsigned r = 0; r < kReaders; ++r) {
        dpu.addTasklet([&](DpuContext &ctx) {
            for (int i = 0; i < 40; ++i) {
                u32 a = 0, b = 0;
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    a = tx.read(arr.at(0));
                    b = tx.read(arr.at(1));
                });
                if (a != b)
                    inconsistent = true;
            }
        });
    }
    dpu.run();
    EXPECT_FALSE(inconsistent);
    EXPECT_EQ(arr.peek(dpu, 0), kWriters * 20u);
    EXPECT_EQ(arr.peek(dpu, 1), kWriters * 20u);
    EXPECT_GT(stm->stats().read_only_commits, 0u);
}

TEST_P(StmAll, UserRetryAbortsAndRetries)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), 1));
    SharedArray32 arr(dpu, Tier::Mram, 1);
    arr.fill(dpu, 0);

    int attempts = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx, [&](TxHandle &tx) {
            ++attempts;
            tx.write(arr.at(0), static_cast<u32>(attempts));
            if (attempts < 3)
                tx.retry();
        });
    });
    dpu.run();
    EXPECT_EQ(attempts, 3);
    EXPECT_EQ(arr.peek(dpu, 0), 3u);
    EXPECT_EQ(stm->stats().aborts, 2u);
    EXPECT_EQ(stm->stats().abort_reasons[static_cast<size_t>(
                  AbortReason::UserAbort)],
              2u);
    EXPECT_EQ(stm->stats().commits, 1u);
}

TEST_P(StmAll, AbortedWritesAreInvisible)
{
    // A transaction that always user-aborts first must leave memory
    // untouched between attempts (tests WT undo in particular).
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), 1));
    SharedArray32 arr(dpu, Tier::Mram, 4);
    arr.fill(dpu, 11);

    bool dirty_seen = false;
    int attempts = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx, [&](TxHandle &tx) {
            ++attempts;
            if (attempts == 1) {
                tx.write(arr.at(2), 999);
                tx.retry();
            }
            // Second attempt: the aborted write must not be visible.
            if (tx.read(arr.at(2)) == 999)
                dirty_seen = true;
            tx.write(arr.at(2), 42);
        });
    });
    dpu.run();
    EXPECT_FALSE(dirty_seen);
    EXPECT_EQ(arr.peek(dpu, 2), 42u);
}

TEST_P(StmAll, WramDataWorksToo)
{
    // Transactions over data living in WRAM (not just MRAM).
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), 4));
    SharedArray32 arr(dpu, Tier::Wram, 4);
    arr.fill(dpu, 0);

    dpu.addTasklets(4, [&](DpuContext &ctx) {
        for (int i = 0; i < 10; ++i) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(1), tx.read(arr.at(1)) + 1);
            });
        }
    });
    dpu.run();
    EXPECT_EQ(arr.peek(dpu, 1), 40u);
}

TEST_P(StmAll, StatsAreInternallyConsistent)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeStm(dpu, baseCfg(GetParam(), 6));
    SharedArray32 arr(dpu, Tier::Mram, 2);
    arr.fill(dpu, 0);

    dpu.addTasklets(6, [&](DpuContext &ctx) {
        for (int i = 0; i < 15; ++i) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(0), tx.read(arr.at(0)) + 1);
            });
        }
    });
    dpu.run();

    const auto &s = stm->stats();
    EXPECT_EQ(s.commits, 90u);
    EXPECT_EQ(s.starts, s.commits + s.aborts);
    u64 reasons = 0;
    for (u64 r : s.abort_reasons)
        reasons += r;
    EXPECT_EQ(reasons, s.aborts);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, StmAll, testing::ValuesIn(allParams()),
                         paramName);

//
// Non-parameterized STM-layer tests.
//

TEST(StmConfigTest, ReadSetOverflowIsLoud)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.kind = StmKind::NOrec;
    cfg.num_tasklets = 1;
    cfg.max_read_set = 4;
    auto stm = makeStm(dpu, cfg);
    SharedArray32 arr(dpu, Tier::Mram, 16);

    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx, [&](TxHandle &tx) {
            for (int i = 0; i < 8; ++i)
                tx.read(arr.at(static_cast<size_t>(i)));
        });
    });
    EXPECT_THROW(dpu.run(), FatalError);
}

TEST(StmConfigTest, WramMetadataCapacityEnforced)
{
    // Read/write sets too large for WRAM must fail loudly — this is
    // the mechanism behind the paper's "Labyrinth cannot use WRAM
    // metadata" exclusion.
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.kind = StmKind::NOrec;
    cfg.metadata_tier = MetadataTier::Wram;
    cfg.num_tasklets = 11;
    cfg.max_read_set = 4096; // 11 * 4096 * 8B >> 64 KB
    cfg.max_write_set = 4096;
    EXPECT_THROW(makeStm(dpu, cfg), FatalError);
}

TEST(StmConfigTest, LockTableSpillsToMramWhenWramFull)
{
    // The ArrayBench A appendix case: WRAM metadata, but the ORec lock
    // table exceeds WRAM -> only the table spills to MRAM.
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.kind = StmKind::TinyEtlWb;
    cfg.metadata_tier = MetadataTier::Wram;
    cfg.num_tasklets = 2;
    cfg.max_read_set = 32;
    cfg.max_write_set = 16;
    cfg.data_words_hint = 16384; // 16K entries x 8B = 128KB > WRAM
    auto stm = makeStm(dpu, cfg);
    EXPECT_EQ(stm->lockTableTier(), Tier::Mram);
    EXPECT_EQ(stm->metadataTier(), MetadataTier::Wram);
}

TEST(StmConfigTest, LockTableSpillCanBeForbidden)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.kind = StmKind::TinyEtlWb;
    cfg.metadata_tier = MetadataTier::Wram;
    cfg.num_tasklets = 2;
    cfg.data_words_hint = 16384;
    cfg.allow_lock_table_spill = false;
    EXPECT_THROW(makeStm(dpu, cfg), FatalError);
}

TEST(StmConfigTest, LockTableSizeFollowsHint)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.kind = StmKind::TinyEtlWb;
    cfg.num_tasklets = 1;
    cfg.data_words_hint = 500;
    auto stm = makeStm(dpu, cfg);
    EXPECT_EQ(stm->lockTableEntries(), 512u);
}

TEST(StmConfigTest, NOrecHasNoLockTable)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.kind = StmKind::NOrec;
    cfg.num_tasklets = 1;
    auto stm = makeStm(dpu, cfg);
    EXPECT_EQ(stm->lockTableEntries(), 0u);
}

TEST(StmKindTest, NamesAreDistinct)
{
    std::set<std::string> names;
    for (StmKind k : allStmKindsExtended())
        names.insert(stmKindName(k));
    EXPECT_EQ(names.size(), kNumStmKinds);
    // The paper's taxonomy has exactly seven members; TL2 is an
    // extension on top.
    EXPECT_EQ(allStmKinds().size(), 7u);
    EXPECT_EQ(allStmKindsExtended().size(), 8u);
}
