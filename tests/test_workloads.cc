/**
 * @file
 * Integration tests: the four paper benchmarks run end-to-end through
 * the driver, with their built-in invariants verified, across the STM
 * matrix. Each workload's verify() throws on invariant violation, so a
 * clean run *is* the assertion; the tests additionally check result
 * plausibility (non-zero throughput, sane abort accounting).
 */

#include <gtest/gtest.h>

#include "runtime/driver.hh"
#include "workloads/arraybench.hh"
#include "workloads/kmeans.hh"
#include "workloads/labyrinth.hh"
#include "workloads/linkedlist.hh"

using namespace pimstm;
using namespace pimstm::core;
using namespace pimstm::runtime;
using namespace pimstm::workloads;

namespace
{

struct Param
{
    StmKind kind;
    MetadataTier tier;
};

std::string
paramName(const testing::TestParamInfo<Param> &info)
{
    std::string s = stmKindName(info.param.kind);
    s += info.param.tier == MetadataTier::Wram ? "_WRAM" : "_MRAM";
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

std::vector<Param>
allParams()
{
    std::vector<Param> ps;
    for (StmKind k : allStmKinds()) {
        ps.push_back({k, MetadataTier::Mram});
        ps.push_back({k, MetadataTier::Wram});
    }
    return ps;
}

RunSpec
spec(const Param &p, unsigned tasklets, u64 seed = 3)
{
    RunSpec s;
    s.kind = p.kind;
    s.tier = p.tier;
    s.tasklets = tasklets;
    s.seed = seed;
    s.mram_bytes = 8 * 1024 * 1024;
    return s;
}

class WorkloadsAll : public testing::TestWithParam<Param>
{
};

} // namespace

TEST_P(WorkloadsAll, ArrayBenchASmall)
{
    ArrayBenchParams p = ArrayBenchParams::workloadA(4);
    ArrayBench wl(p);
    const auto r = runWorkload(wl, spec(GetParam(), 4));
    EXPECT_EQ(r.stm.commits, 4u * 4u);
    EXPECT_GT(r.throughput, 0.0);
}

TEST_P(WorkloadsAll, ArrayBenchBContended)
{
    ArrayBenchParams p = ArrayBenchParams::workloadB(20);
    ArrayBench wl(p);
    const auto r = runWorkload(wl, spec(GetParam(), 8));
    EXPECT_EQ(r.stm.commits, 8u * 20u);
    // K = 10 words shared by 8 tasklets: contention must show up.
    EXPECT_GT(r.stm.starts, r.stm.commits);
}

TEST_P(WorkloadsAll, LinkedListLowContention)
{
    LinkedListParams p = LinkedListParams::lowContention(30);
    LinkedList wl(p);
    const auto r = runWorkload(wl, spec(GetParam(), 6));
    EXPECT_EQ(r.stm.commits, 6u * 30u);
    EXPECT_GT(r.stm.read_only_commits, 0u);
}

TEST_P(WorkloadsAll, LinkedListHighContention)
{
    LinkedListParams p = LinkedListParams::highContention(30);
    LinkedList wl(p);
    const auto r = runWorkload(wl, spec(GetParam(), 6));
    EXPECT_EQ(r.stm.commits, 6u * 30u);
}

TEST_P(WorkloadsAll, KMeansLowContention)
{
    KMeansParams p = KMeansParams::lowContention(6);
    p.rounds = 2;
    KMeans wl(p);
    const auto r = runWorkload(wl, spec(GetParam(), 5));
    // One tx per point per round.
    EXPECT_EQ(r.stm.commits, 24u * 6u * 2u);
}

TEST_P(WorkloadsAll, KMeansHighContention)
{
    KMeansParams p = KMeansParams::highContention(6);
    p.rounds = 2;
    KMeans wl(p);
    const auto r = runWorkload(wl, spec(GetParam(), 5));
    EXPECT_EQ(r.stm.commits, 24u * 6u * 2u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WorkloadsAll,
                         testing::ValuesIn(allParams()), paramName);

//
// Labyrinth is the heaviest workload; cover the full STM matrix only
// with MRAM metadata (WRAM metadata is infeasible by design — checked
// separately below).
//

namespace
{

class LabyrinthAll : public testing::TestWithParam<StmKind>
{
};

std::string
kindName(const testing::TestParamInfo<StmKind> &info)
{
    std::string s = stmKindName(info.param);
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

} // namespace

TEST_P(LabyrinthAll, RoutesDisjointPaths)
{
    LabyrinthParams p = LabyrinthParams::small(20);
    Labyrinth wl(p);
    RunSpec s;
    s.kind = GetParam();
    s.tier = MetadataTier::Mram;
    s.tasklets = 6;
    s.seed = 11;
    s.mram_bytes = 8 * 1024 * 1024;
    const auto r = runWorkload(wl, s);
    // verify() already proved connectivity and disjointness.
    EXPECT_EQ(wl.routedPaths() + wl.failedPaths(), 20u);
    EXPECT_GT(wl.routedPaths(), 10u); // distance-capped jobs mostly route
    EXPECT_GE(r.stm.commits, 20u);    // 20 pops + routed commits
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LabyrinthAll,
                         testing::ValuesIn(allStmKinds()), kindName);

TEST(LabyrinthTest, WramMetadataInfeasibleForLargeGrids)
{
    // Paper appendix: Labyrinth read/write sets exceed WRAM at 11
    // tasklets, so the WRAM-metadata configuration must fail loudly.
    LabyrinthParams p = LabyrinthParams::large(4);
    Labyrinth wl(p);
    RunSpec s;
    s.kind = StmKind::NOrec;
    s.tier = MetadataTier::Wram;
    s.tasklets = 11;
    s.mram_bytes = 32 * 1024 * 1024;
    EXPECT_THROW(runWorkload(wl, s), FatalError);
}

TEST(LabyrinthTest, SingleTaskletRoutesEverythingItCan)
{
    LabyrinthParams p = LabyrinthParams::small(12);
    Labyrinth wl(p);
    RunSpec s;
    s.tasklets = 1;
    s.seed = 4;
    s.mram_bytes = 8 * 1024 * 1024;
    runWorkload(wl, s);
    EXPECT_GT(wl.routedPaths(), 0u);
}

TEST(LabyrinthTest, DeterministicForFixedSeed)
{
    auto run_once = [] {
        LabyrinthParams p = LabyrinthParams::small(15);
        Labyrinth wl(p);
        RunSpec s;
        s.kind = StmKind::TinyEtlWb;
        s.tasklets = 4;
        s.seed = 99;
        s.mram_bytes = 8 * 1024 * 1024;
        const auto r = runWorkload(wl, s);
        return std::make_pair(r.dpu.total_cycles, wl.routedPaths());
    };
    EXPECT_EQ(run_once(), run_once());
}

//
// Cross-cutting driver behaviour.
//

TEST(DriverTest, ThroughputScalesWithTaskletsLowContention)
{
    // ArrayBench A is the paper's low-contention scaling showcase.
    auto tput = [](unsigned tasklets) {
        ArrayBenchParams p = ArrayBenchParams::workloadA(6);
        ArrayBench wl(p);
        RunSpec s;
        s.kind = StmKind::VrEtlWb;
        s.tasklets = tasklets;
        s.mram_bytes = 8 * 1024 * 1024;
        return runWorkload(wl, s).throughput;
    };
    const double t1 = tput(1);
    const double t8 = tput(8);
    EXPECT_GT(t8, 2.0 * t1);
}

TEST(DriverTest, PhaseSharesSumToOne)
{
    ArrayBenchParams p = ArrayBenchParams::workloadA(4);
    ArrayBench wl(p);
    RunSpec s;
    s.tasklets = 4;
    s.mram_bytes = 8 * 1024 * 1024;
    const auto r = runWorkload(wl, s);
    double sum = 0;
    for (double x : r.phase_share)
        sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DriverTest, SeedChangesInterleavingNotInvariants)
{
    ArrayBenchParams p = ArrayBenchParams::workloadB(25);
    double tput_a, tput_b;
    {
        ArrayBench wl(p);
        RunSpec s;
        s.tasklets = 8;
        s.seed = 1;
        s.mram_bytes = 8 * 1024 * 1024;
        tput_a = runWorkload(wl, s).throughput;
    }
    {
        ArrayBench wl(p);
        RunSpec s;
        s.tasklets = 8;
        s.seed = 2;
        s.mram_bytes = 8 * 1024 * 1024;
        tput_b = runWorkload(wl, s).throughput;
    }
    EXPECT_GT(tput_a, 0);
    EXPECT_GT(tput_b, 0);
    // Different seeds: different interleavings, close but not equal.
    EXPECT_NE(tput_a, tput_b);
}

TEST(DriverTest, RejectsBadTaskletCounts)
{
    ArrayBenchParams p = ArrayBenchParams::workloadB(1);
    ArrayBench wl(p);
    RunSpec s;
    s.tasklets = 0;
    EXPECT_THROW(runWorkload(wl, s), FatalError);
    s.tasklets = 25;
    EXPECT_THROW(runWorkload(wl, s), FatalError);
}
