/**
 * @file
 * Tests for the multi-DPU models and the energy model behind Figs. 7
 * and 8: monotonicity in the DPU count, decomposition sanity, PIM
 * system transfer-cost model, and the TDP-based energy arithmetic.
 */

#include <gtest/gtest.h>

#include "hostapp/energy.hh"
#include "hostapp/multi_dpu.hh"
#include "sim/pim_system.hh"

using namespace pimstm;
using namespace pimstm::hostapp;

namespace
{

MultiKMeansParams
tinyKMeans()
{
    MultiKMeansParams p;
    p.points_per_dpu = 240;
    p.sample_dpus = 1;
    return p;
}

MultiLabyrinthParams
tinyLabyrinth()
{
    MultiLabyrinthParams p;
    p.num_paths = 12;
    p.sample_dpus = 1;
    return p;
}

} // namespace

TEST(MultiDpuKMeans, ComputeTimeConstantAcrossDpuCount)
{
    // Each DPU owns a fixed shard, so per-DPU compute time must not
    // grow with the system size (the paper's core scaling argument).
    const auto p = tinyKMeans();
    const auto t1 = runKMeansMultiDpu(1, p);
    const auto t100 = runKMeansMultiDpu(100, p);
    EXPECT_DOUBLE_EQ(t1.compute_seconds, t100.compute_seconds);
}

TEST(MultiDpuKMeans, TransferAndMergeGrowWithDpus)
{
    const auto p = tinyKMeans();
    const auto t10 = runKMeansMultiDpu(10, p);
    const auto t1000 = runKMeansMultiDpu(1000, p);
    EXPECT_GT(t1000.transfer_seconds, t10.transfer_seconds);
    EXPECT_GE(t1000.merge_seconds, t10.merge_seconds);
}

TEST(MultiDpuKMeans, TotalIsSumOfParts)
{
    const auto t = runKMeansMultiDpu(8, tinyKMeans());
    EXPECT_NEAR(t.total(),
                t.compute_seconds + t.transfer_seconds +
                    t.merge_seconds + t.launch_seconds,
                1e-12);
    EXPECT_EQ(t.dpus, 8u);
}

TEST(MultiDpuLabyrinth, ComputeConstantTransfersGrow)
{
    const auto p = tinyLabyrinth();
    const auto t1 = runLabyrinthMultiDpu(1, p);
    const auto t500 = runLabyrinthMultiDpu(500, p);
    EXPECT_DOUBLE_EQ(t1.compute_seconds, t500.compute_seconds);
    EXPECT_GT(t500.transfer_seconds, t1.transfer_seconds);
}

TEST(MultiDpu, RejectsZeroDpus)
{
    EXPECT_THROW(runKMeansMultiDpu(0, tinyKMeans()), FatalError);
    EXPECT_THROW(runLabyrinthMultiDpu(0, tinyLabyrinth()), FatalError);
}

TEST(EnergyModel, PimScalesWithDpuFraction)
{
    sim::EnergyConfig cfg;
    const double full = pimEnergyJoules(cfg, 10.0, cfg.pim_system_dpus);
    const double half =
        pimEnergyJoules(cfg, 10.0, cfg.pim_system_dpus / 2);
    EXPECT_NEAR(full, cfg.pim_system_tdp_w * 10.0, 1e-9);
    EXPECT_NEAR(half, full / 2, 1e-9);
    // More DPUs than the system has cannot exceed full TDP.
    EXPECT_NEAR(pimEnergyJoules(cfg, 10.0, cfg.pim_system_dpus * 2),
                full, 1e-9);
}

TEST(EnergyModel, CpuUsesPackagePlusDram)
{
    sim::EnergyConfig cfg;
    EXPECT_NEAR(cpuEnergyJoules(cfg, 2.0),
                (cfg.cpu_package_w + cfg.cpu_dram_w) * 2.0, 1e-9);
}

TEST(EnergyModel, GainMatchesPaperArithmetic)
{
    sim::EnergyConfig cfg;
    // Equal times at full scale: gain = P_cpu / P_pim.
    const auto e = estimateEnergy(cfg, 1.0, cfg.pim_system_dpus, 1.0);
    EXPECT_NEAR(e.gain(),
                (cfg.cpu_package_w + cfg.cpu_dram_w) /
                    cfg.pim_system_tdp_w,
                1e-9);
    // A PIM run 2x faster doubles the gain.
    const auto e2 = estimateEnergy(cfg, 0.5, cfg.pim_system_dpus, 1.0);
    EXPECT_NEAR(e2.gain(), 2 * e.gain(), 1e-9);
}

TEST(PimSystem, LatencyConstantsMatchPaper)
{
    sim::PimSystem sys(16, 2, sim::DpuConfig{}, sim::TimingConfig{},
                       sim::HostLinkConfig{});
    EXPECT_NEAR(sys.interDpuWordReadSeconds() * 1e6, 331.0, 1e-9);
    EXPECT_NEAR(sys.localMramWordReadSeconds() * 1e9, 231.0, 1e-9);
    // The headline three-orders-of-magnitude gap (§3.1).
    const double ratio = sys.interDpuWordReadSeconds() /
                         sys.localMramWordReadSeconds();
    EXPECT_GT(ratio, 1000.0);
    EXPECT_LT(ratio, 2000.0);
}

TEST(PimSystem, TransfersScaleWithDpusAndBytes)
{
    sim::PimSystem sys(1000, 1, sim::DpuConfig{}, sim::TimingConfig{},
                       sim::HostLinkConfig{});
    const double small = sys.hostToDpusSeconds(1024);
    const double big = sys.hostToDpusSeconds(1024 * 1024);
    EXPECT_GT(big, small);

    sim::PimSystem sys2(2000, 1, sim::DpuConfig{}, sim::TimingConfig{},
                        sim::HostLinkConfig{});
    EXPECT_GT(sys2.hostToDpusSeconds(1024 * 1024), big);
}

TEST(PimSystem, SampleBoundsEnforced)
{
    EXPECT_THROW(sim::PimSystem(0, 1, sim::DpuConfig{},
                                sim::TimingConfig{},
                                sim::HostLinkConfig{}),
                 FatalError);
    EXPECT_THROW(sim::PimSystem(4, 5, sim::DpuConfig{},
                                sim::TimingConfig{},
                                sim::HostLinkConfig{}),
                 FatalError);
    sim::PimSystem ok(4, 4, sim::DpuConfig{}, sim::TimingConfig{},
                      sim::HostLinkConfig{});
    EXPECT_EQ(ok.simulatedDpus(), 4u);
    EXPECT_THROW(ok.dpu(4), PanicError);
}

TEST(PimSystem, RunAllReturnsSlowestDpu)
{
    sim::DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    sim::PimSystem sys(2, 2, cfg, sim::TimingConfig{},
                       sim::HostLinkConfig{});
    sys.dpu(0).addTasklet([](sim::DpuContext &ctx) { ctx.compute(100); });
    sys.dpu(1).addTasklet([](sim::DpuContext &ctx) { ctx.compute(500); });
    const double worst = sys.runAllSeconds();
    EXPECT_NEAR(worst,
                sim::TimingConfig{}.cyclesToSeconds(500 * 11), 1e-12);
}
