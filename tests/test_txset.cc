/**
 * @file
 * Tests for the O(1) transactional-set index and pooled DPU memory:
 * differential checks of the hash index against the linear-scan
 * reference (randomized address streams, aliasing, capacity edges,
 * epoch invalidation), lazy sim::Memory backing semantics, the
 * lock-table misuse assertion, cross-checked STM runs over all eight
 * algorithms, and fresh-vs-pooled Dpu determinism.
 *
 * Suite naming matters for the sanitizer CI filters: TxSetIndex,
 * MemoryLazy and StmAssert are fiber-free (TSan-safe); TxSetStm and
 * DpuPool execute tasklets on fibers.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/norec.hh"
#include "core/stm_factory.hh"
#include "cpu/norec_cpu.hh"
#include "runtime/dpu_pool.hh"
#include "runtime/driver.hh"
#include "runtime/shared_array.hh"
#include "util/epoch_index.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;
using pimstm::runtime::SharedArray32;

namespace
{

DpuConfig
smallDpu(u64 seed = 5)
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    cfg.seed = seed;
    return cfg;
}

/** Enable descriptor index cross-checking for one test's scope. */
struct CrossCheckScope
{
    CrossCheckScope() { TxDescriptor::setCrossCheck(true); }
    ~CrossCheckScope() { TxDescriptor::setCrossCheck(false); }
};

ReadEntry
readEntry(Addr a)
{
    ReadEntry e;
    e.addr = a;
    return e;
}

WriteEntry
writeEntry(Addr a)
{
    WriteEntry e;
    e.addr = a;
    return e;
}

} // namespace

//
// TxSetIndex — fiber-free differential tests of the hash index.
//

TEST(TxSetIndex, InsertFindMissAndClear)
{
    util::EpochIndex<u32> idx;
    idx.init(16);
    EXPECT_EQ(idx.find(7u), -1);
    idx.insert(7u, 0);
    idx.insert(1000u, 1);
    EXPECT_EQ(idx.find(7u), 0);
    EXPECT_EQ(idx.find(1000u), 1);
    EXPECT_EQ(idx.find(8u), -1);
    EXPECT_EQ(idx.size(), 2u);

    idx.clear(); // O(1) epoch bump, not a table wipe
    EXPECT_EQ(idx.size(), 0u);
    EXPECT_EQ(idx.find(7u), -1);
    EXPECT_EQ(idx.find(1000u), -1);

    idx.insert(7u, 42);
    EXPECT_EQ(idx.find(7u), 42);
}

TEST(TxSetIndex, DuplicateInsertKeepsFirstValue)
{
    util::EpochIndex<u32> idx;
    idx.init(8);
    idx.insert(3u, 10);
    idx.insert(3u, 99);
    EXPECT_EQ(idx.find(3u), 10);
    EXPECT_EQ(idx.size(), 1u);
}

TEST(TxSetIndex, GrowthRehashesLiveEntriesOnly)
{
    util::EpochIndex<u32> idx;
    idx.init(4); // 8 slots; inserting past 4 forces growth
    const size_t initial_slots = idx.slotCount();

    // Entries from a dead epoch must not survive the rehash.
    idx.insert(500u, 77);
    idx.clear();

    for (u32 k = 0; k < 64; ++k)
        idx.insert(k, k * 2);
    EXPECT_GT(idx.slotCount(), initial_slots);
    for (u32 k = 0; k < 64; ++k)
        EXPECT_EQ(idx.find(k), static_cast<int>(k * 2));
    EXPECT_EQ(idx.find(500u), -1);
    EXPECT_EQ(idx.size(), 64u);
}

TEST(TxSetIndex, PointerKeys)
{
    u32 words[4] = {};
    util::EpochIndex<u32 *> idx;
    idx.init(8);
    idx.insert(&words[2], 2);
    EXPECT_EQ(idx.find(&words[2]), 2);
    EXPECT_EQ(idx.find(&words[0]), -1);
}

TEST(TxSetIndex, ManyEpochsNeverResurrectStaleKeys)
{
    util::EpochIndex<u32> idx;
    idx.init(8);
    for (u32 round = 0; round < 10000; ++round) {
        const u32 key = round % 13; // reuse a tiny keyspace
        EXPECT_EQ(idx.find(key), -1) << "round " << round;
        idx.insert(key, round);
        EXPECT_EQ(idx.find(key), static_cast<int>(round));
        idx.clear();
    }
}

TEST(TxSetIndex, DescriptorDifferentialRandomStreams)
{
    // Randomized address streams over both a heavily-aliasing tiny
    // keyspace and a sparse one, with periodic resets; every lookup is
    // compared against the linear-scan reference.
    for (const u32 keyspace : {8u, 64u, 100000u}) {
        TxDescriptor tx(0, 64, 32);
        std::mt19937 rng(keyspace);
        std::uniform_int_distribution<u32> addr_dist(0, keyspace - 1);

        for (int round = 0; round < 200; ++round) {
            const int ops = static_cast<int>(rng() % 32);
            for (int op = 0; op < ops; ++op) {
                const Addr a = addr_dist(rng) * 4;
                if (rng() % 2 == 0) {
                    if (tx.findWrite(a) < 0 &&
                        tx.write_set.size() < tx.writeCapacity()) {
                        tx.pushWrite(writeEntry(a));
                    }
                } else {
                    if (!tx.hasRead(a) &&
                        tx.read_set.size() < tx.readCapacity()) {
                        tx.pushRead(readEntry(a));
                    }
                }
                const Addr probe = addr_dist(rng) * 4;
                ASSERT_EQ(tx.findWrite(probe), tx.findWriteLinear(probe));
                ASSERT_EQ(tx.hasRead(probe), tx.hasReadLinear(probe));
            }
            tx.reset(); // O(1) epoch invalidation between rounds
            ASSERT_EQ(tx.findWrite(addr_dist(rng) * 4), -1);
        }
    }
}

TEST(TxSetIndex, DescriptorAtExactCapacityStaysConsistent)
{
    // Fill both sets to their exact reserved capacity: the index table
    // is sized for this (load factor 1/2) and must neither grow nor
    // diverge from the scan.
    TxDescriptor tx(0, 64, 32);
    for (u32 i = 0; i < 64; ++i)
        tx.pushRead(readEntry(i * 4));
    for (u32 i = 0; i < 32; ++i)
        tx.pushWrite(writeEntry(i * 8));
    for (u32 i = 0; i < 64; ++i) {
        ASSERT_TRUE(tx.hasRead(i * 4));
        ASSERT_EQ(tx.findWrite(i * 8 < 256 ? i * 8 : 1),
                  tx.findWriteLinear(i * 8 < 256 ? i * 8 : 1));
    }
    EXPECT_THROW(tx.pushRead(readEntry(9999)), FatalError);
    EXPECT_THROW(tx.pushWrite(writeEntry(9999)), FatalError);
}

TEST(TxSetIndex, CpuTxDifferentialWithGrowth)
{
    // The CPU-side index starts at 32 entries and must grow; pointer
    // keys, randomized stream, checked against the linear scan.
    std::vector<u32> words(4096);
    cpu::CpuTx tx;
    std::mt19937 rng(7);
    for (int round = 0; round < 50; ++round) {
        tx.reset();
        const int ops = 10 + static_cast<int>(rng() % 200);
        for (int op = 0; op < ops; ++op) {
            u32 *addr = &words[rng() % words.size()];
            if (tx.findWrite(addr) < 0)
                tx.pushWrite(addr, rng());
            u32 *probe = &words[rng() % words.size()];
            ASSERT_EQ(tx.findWrite(probe), tx.findWriteLinear(probe));
        }
    }
}

//
// MemoryLazy — lazily-backed tier semantics.
//

TEST(MemoryLazy, ReadsBeyondBackingAreZero)
{
    Memory mem(Tier::Mram, 1 << 20);
    EXPECT_EQ(mem.hostBackedBytes(), 0u);
    EXPECT_EQ(mem.read32(0), 0u);
    EXPECT_EQ(mem.read64(512 * 1024), 0u);
    u8 buf[16];
    std::memset(buf, 0xab, sizeof(buf));
    mem.readBlock((1 << 20) - 16, buf, 16);
    for (u8 b : buf)
        EXPECT_EQ(b, 0u);
}

TEST(MemoryLazy, WriteMaterializesAndReadsBack)
{
    Memory mem(Tier::Mram, 1 << 20);
    mem.write32(1234, 0xdeadbeef);
    EXPECT_EQ(mem.read32(1234), 0xdeadbeefu);
    EXPECT_GT(mem.hostBackedBytes(), 0u);
    EXPECT_LE(mem.hostBackedBytes(), mem.capacity());
    // Straddling read: materialized prefix + zero suffix.
    const u32 far = 900 * 1024;
    mem.write32(far, 7);
    EXPECT_EQ(mem.read32(far), 7u);
    EXPECT_EQ(mem.read32(far + 64), 0u);
}

TEST(MemoryLazy, BackingGrowsToHighWaterNotCapacity)
{
    Memory mem(Tier::Mram, 64 * 1024 * 1024);
    mem.write32(0, 1);
    const size_t after_small = mem.hostBackedBytes();
    EXPECT_LE(after_small, 64u * 1024);
    mem.write32(1024 * 1024, 2); // 1 MB high-water
    EXPECT_GE(mem.hostBackedBytes(), 1024u * 1024);
    EXPECT_LT(mem.hostBackedBytes(), 64u * 1024 * 1024);
}

TEST(MemoryLazy, RecycleZeroesExtentAndResetsAllocator)
{
    Memory mem(Tier::Mram, 1 << 20);
    (void)mem.alloc(256);
    mem.write32(100, 42);
    mem.fill(4096, 0xff, 128);
    mem.recycle(1 << 20);
    EXPECT_EQ(mem.read32(100), 0u);
    EXPECT_EQ(mem.read32(4096), 0u);
    EXPECT_EQ(mem.allocated(), 0u);
    // Adopting a smaller capacity shrinks the logical tier.
    mem.recycle(64 * 1024);
    EXPECT_EQ(mem.capacity(), 64u * 1024);
    EXPECT_LE(mem.hostBackedBytes(), 64u * 1024);
}

TEST(MemoryLazy, CapacityStillEnforced)
{
    Memory mem(Tier::Wram, 64 * 1024);
    EXPECT_THROW(mem.read32(64 * 1024), PanicError);
    EXPECT_THROW(mem.write32(64 * 1024 - 2, 1), PanicError);
    u8 buf[8] = {};
    EXPECT_THROW(mem.readBlock(64 * 1024 - 4, buf, 8), PanicError);
    EXPECT_THROW(mem.writeBlock(64 * 1024 - 4, buf, 8), PanicError);
    EXPECT_THROW(mem.alloc(64 * 1024 + 1), FatalError);
}

TEST(MemoryLazy, CanAllocValidatesAlignmentLikeAlloc)
{
    Memory mem(Tier::Wram, 64 * 1024);
    EXPECT_TRUE(mem.canAlloc(128, 8));
    EXPECT_FALSE(mem.canAlloc(128 * 1024, 8));
    EXPECT_THROW(mem.canAlloc(128, 3), PanicError);
    EXPECT_THROW(mem.canAlloc(128, 0), PanicError);
    EXPECT_THROW(mem.alloc(128, 3), PanicError);
}

//
// StmAssert — misuse assertions in the STM base class.
//

namespace
{

/** Exposes the protected lock-table mapping for the misuse test. */
class LockIndexProbe : public NOrecStm
{
  public:
    using NOrecStm::NOrecStm;
    using NOrecStm::lockIndexFor;
};

} // namespace

TEST(StmAssert, LockIndexWithoutLockTablePanics)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.kind = StmKind::NOrec;
    cfg.num_tasklets = 1;
    cfg.max_read_set = 8;
    cfg.max_write_set = 8;
    LockIndexProbe stm(dpu, cfg);
    ASSERT_EQ(stm.lockTableEntries(), 0u);
    EXPECT_THROW(stm.lockIndexFor(64), PanicError);
}

//
// TxSetStm — cross-checked runs over every algorithm (uses fibers).
//

TEST(TxSetStm, CrossCheckedRandomWorkloadAllKinds)
{
    // Every indexed set lookup re-runs the linear scan and panics on
    // divergence, while 4 tasklets hammer a small array through each
    // of the eight algorithms. A tiny lock table maximizes aliasing.
    CrossCheckScope cross_check;
    for (const StmKind kind : allStmKindsExtended()) {
        Dpu dpu(smallDpu(11), TimingConfig{});
        StmConfig cfg;
        cfg.kind = kind;
        cfg.num_tasklets = 4;
        cfg.max_read_set = 64;
        cfg.max_write_set = 32;
        cfg.data_words_hint = 64;
        cfg.lock_table_entries_override = 16;
        auto stm = makeStm(dpu, cfg);
        SharedArray32 arr(dpu, Tier::Mram, 64);
        arr.fill(dpu, 0);

        constexpr int kTx = 25;
        constexpr int kOps = 4;
        dpu.addTasklets(4, [&](DpuContext &ctx) {
            std::mt19937 rng(ctx.taskletId() + 1);
            for (int t = 0; t < kTx; ++t) {
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    for (int i = 0; i < kOps; ++i) {
                        const size_t slot = rng() % arr.size();
                        tx.write(arr.at(slot),
                                 tx.read(arr.at(slot)) + 1);
                        // Re-read through the write set.
                        tx.read(arr.at(slot));
                    }
                });
            }
        });
        dpu.run();

        u64 sum = 0;
        for (size_t i = 0; i < arr.size(); ++i)
            sum += arr.peek(dpu, i);
        EXPECT_EQ(sum, 4u * kTx * kOps) << stmKindName(kind);
        EXPECT_EQ(stm->stats().commits, 4u * kTx) << stmKindName(kind);
    }
}

//
// DpuPool — pooled instances behave exactly like fresh ones.
//

TEST(DpuPool, RecycleRestoresFreshConstructedState)
{
    const DpuConfig cfg = smallDpu(3);
    const TimingConfig timing{};

    Dpu used(cfg, timing);
    used.mram().write32(0, 0xdead);
    used.wram().write32(16, 0xbeef);
    (void)used.mram().alloc(4096);
    used.addTasklet([&](DpuContext &ctx) { ctx.compute(10); });
    used.run();
    ASSERT_GT(used.stats().total_cycles, 0u);

    used.recycle(cfg, timing);
    Dpu fresh(cfg, timing);
    EXPECT_EQ(used.mram().read32(0), fresh.mram().read32(0));
    EXPECT_EQ(used.wram().read32(16), fresh.wram().read32(16));
    EXPECT_EQ(used.mram().allocated(), fresh.mram().allocated());
    EXPECT_EQ(used.stats().total_cycles, fresh.stats().total_cycles);
    EXPECT_EQ(used.stats().instructions, fresh.stats().instructions);

    // And it is fully runnable again, with identical results.
    auto runOnce = [&](Dpu &dpu) {
        SharedArray32 arr(dpu, Tier::Mram, 4);
        arr.fill(dpu, 0);
        dpu.addTasklets(2, [&](DpuContext &ctx) {
            ctx.compute(5);
            dpu.mram().write32(0, 123);
        });
        dpu.run();
        return dpu.stats().total_cycles;
    };
    EXPECT_EQ(runOnce(used), runOnce(fresh));
}

TEST(DpuPool, FreshVsPooledRunsAreBitwiseIdentical)
{
    using runtime::DpuPool;
    auto &pool = DpuPool::global();
    pool.clear();
    pool.setEnabled(true);

    runtime::RunSpec spec;
    spec.kind = StmKind::TinyEtlWb;
    spec.tasklets = 8;
    spec.seed = 42;
    spec.mram_bytes = 4 * 1024 * 1024;

    const auto before = pool.stats();
    workloads::ArrayBench first(
        workloads::ArrayBenchParams::workloadB(40));
    const auto r1 = runtime::runWorkload(first, spec);

    // The first run returned its Dpu to the pool; the second must
    // recycle it and produce bitwise-identical statistics.
    workloads::ArrayBench second(
        workloads::ArrayBenchParams::workloadB(40));
    const auto r2 = runtime::runWorkload(second, spec);
    const auto after = pool.stats();
    EXPECT_GE(after.hits, before.hits + 1);

    EXPECT_EQ(r1.stm.commits, r2.stm.commits);
    EXPECT_EQ(r1.stm.aborts, r2.stm.aborts);
    EXPECT_EQ(r1.stm.starts, r2.stm.starts);
    EXPECT_EQ(r1.stm.reads, r2.stm.reads);
    EXPECT_EQ(r1.stm.writes, r2.stm.writes);
    EXPECT_EQ(r1.stm.validations, r2.stm.validations);
    EXPECT_EQ(r1.stm.abort_reasons, r2.stm.abort_reasons);
    EXPECT_EQ(r1.dpu.total_cycles, r2.dpu.total_cycles);
    EXPECT_EQ(r1.dpu.instructions, r2.dpu.instructions);
    EXPECT_EQ(r1.dpu.phase_cycles, r2.dpu.phase_cycles);
    EXPECT_EQ(r1.dpu.mram_reads, r2.dpu.mram_reads);
    EXPECT_EQ(r1.dpu.mram_writes, r2.dpu.mram_writes);
    EXPECT_EQ(r1.dpu.mram_bytes_read, r2.dpu.mram_bytes_read);
    EXPECT_EQ(r1.dpu.mram_bytes_written, r2.dpu.mram_bytes_written);
    EXPECT_EQ(r1.dpu.atomic_acquires, r2.dpu.atomic_acquires);
    EXPECT_EQ(r1.dpu.atomic_stalls, r2.dpu.atomic_stalls);
    EXPECT_EQ(r1.seconds, r2.seconds);
    EXPECT_EQ(r1.throughput, r2.throughput);
}

TEST(DpuPool, DisabledPoolAlwaysConstructsFresh)
{
    using runtime::DpuPool;
    auto &pool = DpuPool::global();
    pool.clear();
    pool.setEnabled(false);

    const auto before = pool.stats();
    auto a = pool.acquire(smallDpu(), TimingConfig{});
    pool.release(std::move(a));
    auto b = pool.acquire(smallDpu(), TimingConfig{});
    const auto after = pool.stats();
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses + 2);
    EXPECT_EQ(after.pooled, 0u);

    pool.setEnabled(true);
    b.reset();
}
