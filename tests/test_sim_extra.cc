/**
 * @file
 * Deeper simulator tests: DMA transfer splitting, the random-access
 * model, metadata-tier cost asymmetry (the WRAM-speedup mechanism of
 * §4.2.3), reset semantics, stall accounting and the stats counters.
 */

#include <gtest/gtest.h>

#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"
#include "sim/dpu.hh"

using namespace pimstm;
using namespace pimstm::sim;

namespace
{

DpuConfig
smallDpu()
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    return cfg;
}

Cycles
costOf(const std::function<void(DpuContext &)> &body)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    Cycles cost = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        const Cycles t0 = ctx.now();
        body(ctx);
        cost = ctx.now() - t0;
    });
    dpu.run();
    return cost;
}

} // namespace

TEST(DpuTiming, LargeBlocksSplitIntoMaxSizeTransfers)
{
    // A 4 KB block must pay two transfer setups (2 KB DMA cap), so it
    // costs measurably more than 2x a 2 KB block minus fixed latency.
    const Cycles c2k =
        costOf([](DpuContext &ctx) { ctx.touchRead(Tier::Mram, 2048); });
    const Cycles c4k =
        costOf([](DpuContext &ctx) { ctx.touchRead(Tier::Mram, 4096); });
    TimingConfig t;
    // c4k ~= c2k + (2048/8)*beat + one more setup + one more SDK issue
    const Cycles extra = c4k - c2k;
    EXPECT_GE(extra, (2048 / t.mram_beat_bytes) * t.mram_cycles_per_beat);
    EXPECT_LE(extra,
              (2048 / t.mram_beat_bytes) * t.mram_cycles_per_beat +
                  4 * t.mram_engine_setup_cycles +
                  2 * t.mram_access_instrs * t.reissue_interval);
}

TEST(DpuTiming, RandomAccessesCostFullLatencyEach)
{
    // N dependent random word reads must cost ~N x the single-word
    // latency for one tasklet — not stream like one big DMA.
    const Cycles one =
        costOf([](DpuContext &ctx) { ctx.touchRandom(Tier::Mram, 1, 4, false); });
    const Cycles fifty = costOf(
        [](DpuContext &ctx) { ctx.touchRandom(Tier::Mram, 50, 4, false); });
    EXPECT_GT(fifty, 40 * one);

    const Cycles streamed = costOf(
        [](DpuContext &ctx) { ctx.touchRead(Tier::Mram, 50 * 4); });
    EXPECT_GT(fifty, 5 * streamed);
}

TEST(DpuTiming, RandomAccessesAreBandwidthBoundAcrossTasklets)
{
    auto cycles_for = [](unsigned tasklets) {
        Dpu dpu(smallDpu(), TimingConfig{});
        dpu.addTasklets(tasklets, [](DpuContext &ctx) {
            for (int i = 0; i < 20; ++i)
                ctx.touchRandom(Tier::Mram, 50, 4, false);
        });
        dpu.run();
        return dpu.stats().total_cycles;
    };
    // The Labyrinth saturation: clearly sub-linear well below 11.
    const double c1 = static_cast<double>(cycles_for(1));
    const double c11 = static_cast<double>(cycles_for(11));
    EXPECT_GT(c11 / c1, 1.8);
}

TEST(DpuTiming, WramMetadataIsMuchCheaperThanMram)
{
    // The mechanism behind the paper's §4.2.3 WRAM speedups: identical
    // touch sequences cost far less against WRAM.
    const Cycles wram = costOf([](DpuContext &ctx) {
        for (int i = 0; i < 100; ++i)
            ctx.touchRead(Tier::Wram, 8);
    });
    const Cycles mram = costOf([](DpuContext &ctx) {
        for (int i = 0; i < 100; ++i)
            ctx.touchRead(Tier::Mram, 8);
    });
    EXPECT_GT(mram, 3 * wram);
}

TEST(DpuTiming, ZeroByteTouchIsHarmless)
{
    EXPECT_NO_THROW(costOf([](DpuContext &ctx) {
        ctx.touchRandom(Tier::Mram, 0, 4, false);
        ctx.compute(0);
    }));
}

TEST(DpuStatsTest, MemoryCountersTrackTraffic)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    const u32 off = dpu.mram().alloc(64);
    dpu.addTasklet([&](DpuContext &ctx) {
        ctx.read32(makeAddr(Tier::Mram, off));
        ctx.write32(makeAddr(Tier::Mram, off), 1);
        ctx.read64(makeAddr(Tier::Mram, off + 8));
        ctx.touchRandom(Tier::Mram, 3, 4, true);
    });
    dpu.run();
    const auto &s = dpu.stats();
    EXPECT_EQ(s.mram_reads, 2u);
    EXPECT_EQ(s.mram_writes, 4u); // 1 explicit + 3 random
    EXPECT_EQ(s.mram_bytes_read, 4u + 8u);
    EXPECT_EQ(s.mram_bytes_written, 4u + 12u);
}

TEST(DpuStatsTest, StallCyclesOnlyWhenContended)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    dpu.addTasklet([&](DpuContext &ctx) {
        ctx.acquire(1);
        ctx.release(1);
    });
    dpu.run();
    EXPECT_EQ(dpu.stats().atomic_stalls, 0u);
    EXPECT_EQ(dpu.stats().atomic_stall_cycles, 0u);
    EXPECT_EQ(dpu.stats().atomic_acquires, 1u);
}

TEST(DpuResetTest, ResetRunPreservesMemoryAndAllocations)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    const u32 off = dpu.mram().alloc(16);
    dpu.mram().write32(off, 1234);

    dpu.addTasklet([&](DpuContext &ctx) { ctx.compute(10); });
    dpu.run();
    const auto first_cycles = dpu.stats().total_cycles;
    EXPECT_GT(first_cycles, 0u);

    dpu.resetRun();
    EXPECT_EQ(dpu.stats().total_cycles, 0u);
    EXPECT_EQ(dpu.now(), 0u);
    EXPECT_EQ(dpu.mram().read32(off), 1234u); // contents survive
    EXPECT_FALSE(dpu.mram().canAlloc(dpu.mram().capacity())); // alloc too

    dpu.addTasklet([&](DpuContext &ctx) { ctx.compute(10); });
    dpu.run();
    EXPECT_EQ(dpu.stats().total_cycles, first_cycles);
}

TEST(DpuSchedulerTest, BlockedTaskletsDoNotConsumeIssueSlots)
{
    // One tasklet holds the atomic bit and computes; others block on
    // it. The computing tasklet's instruction interval must reflect
    // only runnable peers (the blocked ones are stalled).
    Dpu dpu(smallDpu(), TimingConfig{});
    Cycles compute_cost = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        ctx.acquire(9);
        // Give the other tasklets time to block on bit 9.
        ctx.delay(200);
        const Cycles t0 = ctx.now();
        ctx.compute(100);
        compute_cost = ctx.now() - t0;
        ctx.release(9);
    });
    for (int i = 0; i < 5; ++i) {
        dpu.addTasklet([&](DpuContext &ctx) {
            ctx.acquire(9);
            ctx.release(9);
        });
    }
    dpu.run();
    // Interval should be the pipeline minimum (11), not inflated by
    // the five blocked tasklets.
    EXPECT_EQ(compute_cost, 100u * 11u);
}

TEST(DpuSchedulerTest, ManyTaskletsInflateIssueInterval)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    std::vector<Cycles> costs(22, 0);
    for (unsigned t = 0; t < 22; ++t) {
        dpu.addTasklet([&, t](DpuContext &ctx) {
            const Cycles t0 = ctx.now();
            ctx.compute(100);
            costs[t] = ctx.now() - t0;
        });
    }
    dpu.run();
    // With 22 runnable tasklets the per-tasklet interval is 22 > 11.
    EXPECT_EQ(costs[0], 100u * 22u);
}

TEST(StmCosts, WramMetadataSpeedsUpIdenticalWork)
{
    // End-to-end §4.2.3 mechanism check: same workload, same STM, only
    // the metadata tier differs.
    auto cycles_for = [](core::MetadataTier tier) {
        Dpu dpu(smallDpu(), TimingConfig{});
        core::StmConfig cfg;
        cfg.kind = core::StmKind::TinyEtlWb;
        cfg.metadata_tier = tier;
        cfg.num_tasklets = 4;
        auto stm = core::makeStm(dpu, cfg);
        runtime::SharedArray32 arr(dpu, Tier::Mram, 64);
        arr.fill(dpu, 0);
        dpu.addTasklets(4, [&](DpuContext &ctx) {
            for (int i = 0; i < 20; ++i) {
                const u32 w = static_cast<u32>(ctx.rng().below(64));
                core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                    tx.write(arr.at(w), tx.read(arr.at(w)) + 1);
                });
            }
        });
        dpu.run();
        return dpu.stats().total_cycles;
    };
    EXPECT_GT(cycles_for(core::MetadataTier::Mram),
              cycles_for(core::MetadataTier::Wram));
}

TEST(StmCosts, WaitCmRidesOutAShortLockHold)
{
    // Deterministic scenario: a writer holds an ORec for a bounded
    // window; a reader arriving inside the window aborts with the
    // paper's abort-immediately policy, but commits first-try when the
    // wait-on-contention manager is allowed to poll past the window.
    // (Under sustained contention waiting does NOT pay off — that is
    // ablation A4's result and why the paper dismisses the policy.)
    auto aborts_for = [](unsigned polls) {
        Dpu dpu(smallDpu(), TimingConfig{});
        core::StmConfig cfg;
        cfg.kind = core::StmKind::TinyEtlWb;
        cfg.num_tasklets = 2;
        cfg.cm_wait_polls = polls;
        cfg.abort_backoff = false; // keep the schedule exact
        auto stm = core::makeStm(dpu, cfg);
        runtime::SharedArray32 arr(dpu, Tier::Mram, 2);
        arr.fill(dpu, 0);
        dpu.addTasklet([&](DpuContext &ctx) {
            core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                tx.write(arr.at(0), 1); // lock the ORec...
                ctx.compute(300);       // ...and hold it a while
            });
        });
        dpu.addTasklet([&](DpuContext &ctx) {
            ctx.delay(1500); // arrive inside the writer's hold window
            core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                tx.read(arr.at(0));
            });
        });
        dpu.run();
        EXPECT_EQ(arr.peek(dpu, 0), 1u);
        return stm->stats().aborts;
    };
    EXPECT_GT(aborts_for(0), 0u);
    EXPECT_EQ(aborts_for(200), 0u);
}
