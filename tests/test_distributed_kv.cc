/**
 * @file
 * Tests for the distributed KV extension (the paper's §5 future-work
 * scenario) and for the TxHashMap data structure it shards: routing,
 * batch semantics, cross-shard relocation, tombstone reuse, and
 * population conservation against a reference std::map.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/stm_factory.hh"
#include "hostapp/distributed_kv.hh"
#include "runtime/tx_hashmap.hh"

using namespace pimstm;
using namespace pimstm::hostapp;
using pimstm::runtime::TxHashMap;

namespace
{

DistributedKvConfig
smallCfg(unsigned shards = 4)
{
    DistributedKvConfig cfg;
    cfg.shards = shards;
    cfg.capacity_per_shard = 256;
    cfg.tasklets_per_dpu = 4;
    cfg.mram_bytes = 1 * 1024 * 1024;
    return cfg;
}

} // namespace

//
// TxHashMap (single DPU).
//

TEST(TxHashMapTest, InsertLookupEraseRoundTrip)
{
    sim::DpuConfig dc;
    dc.mram_bytes = 1 * 1024 * 1024;
    sim::Dpu dpu(dc, sim::TimingConfig{});
    core::StmConfig sc;
    sc.num_tasklets = 1;
    sc.max_read_set = 600;
    auto stm = core::makeStm(dpu, sc);
    TxHashMap map(dpu, sim::Tier::Mram, 64);

    dpu.addTasklet([&](sim::DpuContext &ctx) {
        core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
            EXPECT_TRUE(map.insert(tx, 10, 100));
            EXPECT_TRUE(map.insert(tx, 20, 200));
            u32 v = 0;
            EXPECT_TRUE(map.lookup(tx, 10, v));
            EXPECT_EQ(v, 100u);
            EXPECT_FALSE(map.lookup(tx, 30, v));
            EXPECT_TRUE(map.erase(tx, 10));
            EXPECT_FALSE(map.lookup(tx, 10, v));
            EXPECT_FALSE(map.erase(tx, 10));
        });
    });
    dpu.run();
    EXPECT_EQ(map.population(dpu), 1u);
}

TEST(TxHashMapTest, UpdateOverwrites)
{
    sim::DpuConfig dc;
    dc.mram_bytes = 1 * 1024 * 1024;
    sim::Dpu dpu(dc, sim::TimingConfig{});
    core::StmConfig sc;
    sc.num_tasklets = 1;
    auto stm = core::makeStm(dpu, sc);
    TxHashMap map(dpu, sim::Tier::Mram, 64);

    dpu.addTasklet([&](sim::DpuContext &ctx) {
        core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
            map.insert(tx, 5, 1);
            map.insert(tx, 5, 2);
        });
    });
    dpu.run();
    u32 v = 0;
    EXPECT_TRUE(map.peekValue(dpu, 5, v));
    EXPECT_EQ(v, 2u);
    EXPECT_EQ(map.population(dpu), 1u);
}

TEST(TxHashMapTest, TombstonesAreReusedAndChainsSurvive)
{
    sim::DpuConfig dc;
    dc.mram_bytes = 1 * 1024 * 1024;
    sim::Dpu dpu(dc, sim::TimingConfig{});
    core::StmConfig sc;
    sc.num_tasklets = 1;
    sc.max_read_set = 600;
    sc.max_write_set = 64;
    auto stm = core::makeStm(dpu, sc);
    // Tiny capacity forces long probe chains and collisions.
    TxHashMap map(dpu, sim::Tier::Mram, 16);

    dpu.addTasklet([&](sim::DpuContext &ctx) {
        core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
            for (u32 k = 1; k <= 12; ++k)
                EXPECT_TRUE(map.insert(tx, k, k));
            // Punch holes, then verify everything else is reachable.
            EXPECT_TRUE(map.erase(tx, 3));
            EXPECT_TRUE(map.erase(tx, 7));
            for (u32 k = 1; k <= 12; ++k) {
                u32 v = 0;
                if (k == 3 || k == 7)
                    EXPECT_FALSE(map.lookup(tx, k, v));
                else
                    EXPECT_TRUE(map.lookup(tx, k, v));
            }
            // Reinsert into the tombstones.
            EXPECT_TRUE(map.insert(tx, 33, 333));
            u32 v = 0;
            EXPECT_TRUE(map.lookup(tx, 33, v));
            EXPECT_EQ(v, 333u);
        });
    });
    dpu.run();
    EXPECT_EQ(map.population(dpu), 11u);
}

TEST(TxHashMapTest, FullTableRejectsNewKeys)
{
    sim::DpuConfig dc;
    dc.mram_bytes = 1 * 1024 * 1024;
    sim::Dpu dpu(dc, sim::TimingConfig{});
    core::StmConfig sc;
    sc.num_tasklets = 1;
    sc.max_read_set = 64;
    sc.max_write_set = 32;
    auto stm = core::makeStm(dpu, sc);
    TxHashMap map(dpu, sim::Tier::Mram, 8);

    bool ninth = true;
    dpu.addTasklet([&](sim::DpuContext &ctx) {
        core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
            for (u32 k = 1; k <= 8; ++k)
                EXPECT_TRUE(map.insert(tx, k, k));
            ninth = map.insert(tx, 9, 9);
        });
    });
    dpu.run();
    EXPECT_FALSE(ninth);
}

TEST(TxHashMapTest, RejectsMarkerKeys)
{
    EXPECT_FALSE(TxHashMap::validKey(TxHashMap::kEmpty));
    EXPECT_FALSE(TxHashMap::validKey(TxHashMap::kTombstone));
    EXPECT_TRUE(TxHashMap::validKey(0));
    EXPECT_TRUE(TxHashMap::validKey(12345));
}

//
// DistributedKv.
//

TEST(DistributedKvTest, BatchMatchesReferenceMap)
{
    auto kv = std::make_unique<DistributedKv>(smallCfg());
    std::map<u32, u32> ref;
    Rng rng(99);

    std::vector<KvOp> batch;
    for (int i = 0; i < 300; ++i) {
        const u32 key = static_cast<u32>(rng.below(200)) + 1;
        // Keys within one batch are unique per op type ordering issue:
        // batches run per-shard concurrently, so same-key ops in one
        // batch have no defined order. Use distinct keys per batch op.
        batch.push_back(KvOp::put(key, key * 10));
        ref[key] = key * 10;
    }
    kv->execute(batch);
    EXPECT_EQ(kv->population(), ref.size());

    for (const auto &[key, value] : ref) {
        u32 v = 0;
        ASSERT_TRUE(kv->peek(key, v));
        EXPECT_EQ(v, value);
    }
}

TEST(DistributedKvTest, GetsSeePriorBatchPuts)
{
    auto kv = std::make_unique<DistributedKv>(smallCfg());
    kv->execute({KvOp::put(1, 11), KvOp::put(2, 22), KvOp::put(3, 33)});
    const auto r =
        kv->execute({KvOp::get(2), KvOp::get(4), KvOp::get(3)});
    EXPECT_TRUE(r[0].ok);
    EXPECT_EQ(r[0].value, 22u);
    EXPECT_FALSE(r[1].ok);
    EXPECT_TRUE(r[2].ok);
    EXPECT_EQ(r[2].value, 33u);
}

TEST(DistributedKvTest, EraseRemovesAcrossShards)
{
    auto kv = std::make_unique<DistributedKv>(smallCfg(8));
    std::vector<KvOp> puts, erases;
    for (u32 k = 1; k <= 64; ++k)
        puts.push_back(KvOp::put(k, k));
    kv->execute(puts);
    EXPECT_EQ(kv->population(), 64u);
    for (u32 k = 1; k <= 64; k += 2)
        erases.push_back(KvOp::erase(k));
    const auto r = kv->execute(erases);
    for (const auto &res : r)
        EXPECT_TRUE(res.ok);
    EXPECT_EQ(kv->population(), 32u);
}

TEST(DistributedKvTest, ShardRoutingIsStableAndBalanced)
{
    auto kv = std::make_unique<DistributedKv>(smallCfg(4));
    std::vector<u32> counts(4, 0);
    for (u32 k = 1; k <= 4000; ++k) {
        const unsigned s = kv->shardOf(k);
        ASSERT_LT(s, 4u);
        EXPECT_EQ(s, kv->shardOf(k)); // stable
        ++counts[s];
    }
    for (u32 c : counts) {
        EXPECT_GT(c, 700u); // roughly balanced
        EXPECT_LT(c, 1300u);
    }
}

TEST(DistributedKvTest, MoveKeyRelocatesAtomically)
{
    auto kv = std::make_unique<DistributedKv>(smallCfg(8));
    kv->execute({KvOp::put(100, 777)});

    // Find a target key on a different shard.
    u32 target = 101;
    while (kv->shardOf(target) == kv->shardOf(100))
        ++target;

    EXPECT_TRUE(kv->moveKey(100, target));
    u32 v = 0;
    EXPECT_FALSE(kv->peek(100, v));
    ASSERT_TRUE(kv->peek(target, v));
    EXPECT_EQ(v, 777u);
    EXPECT_EQ(kv->population(), 1u);
}

TEST(DistributedKvTest, MoveKeyRefusesBadMoves)
{
    auto kv = std::make_unique<DistributedKv>(smallCfg());
    kv->execute({KvOp::put(1, 10), KvOp::put(2, 20)});
    EXPECT_FALSE(kv->moveKey(5, 6));  // absent source
    EXPECT_FALSE(kv->moveKey(1, 2));  // occupied destination
    EXPECT_FALSE(kv->moveKey(1, 1));  // no-op
    u32 v = 0;
    EXPECT_TRUE(kv->peek(1, v));
    EXPECT_EQ(v, 10u);
    EXPECT_EQ(kv->population(), 2u);
}

TEST(DistributedKvTest, TimeAndStatsAccumulate)
{
    auto kv = std::make_unique<DistributedKv>(smallCfg());
    EXPECT_DOUBLE_EQ(kv->elapsedSeconds(), 0.0);
    kv->execute({KvOp::put(1, 1)});
    const double t1 = kv->elapsedSeconds();
    EXPECT_GT(t1, 0.0);
    EXPECT_GE(kv->totalCommits(), 1u);
    kv->execute({KvOp::get(1)});
    EXPECT_GT(kv->elapsedSeconds(), t1);
}

TEST(DistributedKvTest, RejectsInvalidConfigsAndKeys)
{
    DistributedKvConfig bad = smallCfg();
    bad.shards = 0;
    EXPECT_THROW(DistributedKv{bad}, FatalError);

    auto kv = std::make_unique<DistributedKv>(smallCfg());
    EXPECT_THROW(kv->execute({KvOp::put(TxHashMap::kEmpty, 1)}),
                 FatalError);
}

TEST(DistributedKvTest, ContendedSameShardBatchIsSerializable)
{
    // Many increments of one key via read-modify-write pairs would
    // race; instead hammer distinct keys + heavy same-shard traffic
    // and verify every op landed.
    DistributedKvConfig cfg = smallCfg(2);
    cfg.tasklets_per_dpu = 8;
    auto kv = std::make_unique<DistributedKv>(cfg);

    std::vector<KvOp> ops;
    for (u32 k = 1; k <= 200; ++k)
        ops.push_back(KvOp::put(k, k + 1000));
    const auto r = kv->execute(ops);
    for (const auto &res : r)
        EXPECT_TRUE(res.ok);
    EXPECT_EQ(kv->population(), 200u);
    for (u32 k = 1; k <= 200; ++k) {
        u32 v = 0;
        ASSERT_TRUE(kv->peek(k, v));
        EXPECT_EQ(v, k + 1000);
    }
}
