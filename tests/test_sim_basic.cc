/**
 * @file
 * Unit tests for the simulator substrate: fibers, memory tiers, the
 * atomic register, scheduling determinism and the pipeline/DMA timing
 * model's qualitative properties (scaling knee at 11 tasklets, MRAM
 * engine serialization).
 */

#include <gtest/gtest.h>

#include "sim/dpu.hh"
#include "sim/fiber.hh"

using namespace pimstm;
using namespace pimstm::sim;

TEST(Fiber, RunsAndYields)
{
    Fiber f;
    int step = 0;
    f.init(64 * 1024, [&] {
        step = 1;
        f.yieldOut();
        step = 2;
    });
    EXPECT_TRUE(f.enter());
    EXPECT_EQ(step, 1);
    EXPECT_FALSE(f.enter());
    EXPECT_EQ(step, 2);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, PropagatesExceptions)
{
    Fiber f;
    f.init(64 * 1024, [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.enter(), std::runtime_error);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, ExceptionCaughtInsideFiberIsTransparent)
{
    // STM aborts unwind via exceptions *inside* the fiber; make sure
    // that works on a makecontext stack.
    Fiber f;
    bool caught = false;
    f.init(64 * 1024, [&] {
        try {
            throw 42;
        } catch (int) {
            caught = true;
        }
    });
    EXPECT_FALSE(f.enter());
    EXPECT_TRUE(caught);
}

TEST(Fiber, Reusable)
{
    Fiber f;
    int runs = 0;
    for (int i = 0; i < 3; ++i) {
        f.init(64 * 1024, [&] { ++runs; });
        EXPECT_FALSE(f.enter());
    }
    EXPECT_EQ(runs, 3);
}

TEST(Memory, ReadWriteRoundTrip)
{
    Memory m(Tier::Mram, 4096);
    m.write32(0, 0xdeadbeef);
    m.write32(100, 42);
    m.write64(200, 0x0123456789abcdefULL);
    EXPECT_EQ(m.read32(0), 0xdeadbeefu);
    EXPECT_EQ(m.read32(100), 42u);
    EXPECT_EQ(m.read64(200), 0x0123456789abcdefULL);
}

TEST(Memory, BlockAccess)
{
    Memory m(Tier::Wram, 1024);
    const char src[] = "hello pim";
    m.writeBlock(16, src, sizeof(src));
    char dst[sizeof(src)];
    m.readBlock(16, dst, sizeof(src));
    EXPECT_STREQ(dst, src);
}

TEST(Memory, AllocatorRespectsCapacity)
{
    Memory m(Tier::Wram, 1024);
    const u32 a = m.alloc(512);
    EXPECT_EQ(a, 0u);
    EXPECT_TRUE(m.canAlloc(512));
    EXPECT_FALSE(m.canAlloc(513));
    EXPECT_THROW(m.alloc(513), FatalError);
    m.alloc(512);
    EXPECT_EQ(m.available(), 0u);
}

TEST(Memory, AllocatorAligns)
{
    Memory m(Tier::Wram, 1024);
    m.alloc(3, 1);
    const u32 b = m.alloc(8, 8);
    EXPECT_EQ(b % 8, 0u);
}

TEST(Memory, ResetAllocReclaims)
{
    Memory m(Tier::Wram, 128);
    m.alloc(128);
    EXPECT_FALSE(m.canAlloc(1));
    m.resetAlloc();
    EXPECT_TRUE(m.canAlloc(128));
}

TEST(Addr, TierTagging)
{
    const Addr w = makeAddr(Tier::Wram, 0x1234);
    const Addr m = makeAddr(Tier::Mram, 0x1234);
    EXPECT_EQ(addrTier(w), Tier::Wram);
    EXPECT_EQ(addrTier(m), Tier::Mram);
    EXPECT_EQ(addrOffset(w), 0x1234u);
    EXPECT_EQ(addrOffset(m), 0x1234u);
    EXPECT_NE(w, m);
}

TEST(AtomicRegister, AcquireRelease)
{
    AtomicRegister reg;
    const unsigned bit = reg.bitFor(0x1000);
    EXPECT_TRUE(reg.tryAcquire(bit, 3));
    EXPECT_TRUE(reg.isHeld(bit));
    EXPECT_EQ(reg.holder(bit), 3);
    EXPECT_FALSE(reg.tryAcquire(bit, 5));
    reg.release(bit, 3);
    EXPECT_FALSE(reg.isHeld(bit));
    EXPECT_TRUE(reg.tryAcquire(bit, 5));
}

TEST(AtomicRegister, ReleaseByNonHolderPanics)
{
    AtomicRegister reg;
    EXPECT_TRUE(reg.tryAcquire(7, 1));
    EXPECT_THROW(reg.release(7, 2), PanicError);
}

TEST(AtomicRegister, HashCoversManyBits)
{
    AtomicRegister reg;
    std::vector<bool> seen(256, false);
    unsigned distinct = 0;
    for (u32 k = 0; k < 4096; ++k) {
        const unsigned b = reg.bitFor(k * 4);
        ASSERT_LT(b, 256u);
        if (!seen[b]) {
            seen[b] = true;
            ++distinct;
        }
    }
    // A uniform hash should reach (almost) all 256 bits from 4096 keys.
    EXPECT_GT(distinct, 200u);
}

TEST(AtomicRegister, ReducedBitsAlias)
{
    AtomicRegister reg(4);
    for (u32 k = 0; k < 64; ++k)
        EXPECT_LT(reg.bitFor(k), 4u);
}

namespace
{

DpuConfig
smallDpuConfig()
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(Dpu, SingleTaskletComputesAndFinishes)
{
    Dpu dpu(smallDpuConfig(), TimingConfig{});
    dpu.addTasklet([](DpuContext &ctx) { ctx.compute(100); });
    dpu.run();
    // One tasklet: 100 instructions at the 11-cycle reissue interval.
    EXPECT_EQ(dpu.stats().total_cycles, 100u * 11u);
    EXPECT_EQ(dpu.stats().instructions, 100u);
}

TEST(Dpu, ComputeScalesLinearlyUpToEleven)
{
    // Aggregate compute throughput must scale ~linearly to 11 tasklets
    // and be flat beyond — the UPMEM pipeline saturation the paper's
    // scalability analysis relies on.
    auto cycles_for = [](unsigned tasklets) {
        Dpu dpu(smallDpuConfig(), TimingConfig{});
        dpu.addTasklets(tasklets,
                        [](DpuContext &ctx) { ctx.compute(1000); });
        dpu.run();
        return dpu.stats().total_cycles;
    };
    const auto c1 = cycles_for(1);
    const auto c11 = cycles_for(11);
    const auto c22 = cycles_for(22);
    // 11 tasklets do 11x the work in (about) the same time as 1.
    EXPECT_NEAR(static_cast<double>(c11) / c1, 1.0, 0.05);
    // 22 tasklets do 2x the work of 11 in about 2x the time.
    EXPECT_NEAR(static_cast<double>(c22) / c11, 2.0, 0.05);
}

TEST(Dpu, MramSlowerThanWram)
{
    Dpu dpu(smallDpuConfig(), TimingConfig{});
    const u32 moff = dpu.mram().alloc(64);
    const u32 woff = dpu.wram().alloc(64);
    Cycles wram_cost = 0, mram_cost = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        const Cycles t0 = ctx.now();
        ctx.read32(makeAddr(Tier::Wram, woff));
        const Cycles t1 = ctx.now();
        ctx.read32(makeAddr(Tier::Mram, moff));
        const Cycles t2 = ctx.now();
        wram_cost = t1 - t0;
        mram_cost = t2 - t1;
    });
    dpu.run();
    EXPECT_GT(mram_cost, 5 * wram_cost);
}

TEST(Dpu, MramLatencyMatchesPaperMeasurement)
{
    // The paper measured 231 ns for a local MRAM 64-bit read; the
    // timing model should land in that ballpark (within 25%).
    TimingConfig t;
    Dpu dpu(smallDpuConfig(), t);
    const u32 off = dpu.mram().alloc(64);
    Cycles cost = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        const Cycles t0 = ctx.now();
        ctx.read64(makeAddr(Tier::Mram, off));
        cost = ctx.now() - t0;
    });
    dpu.run();
    const double ns = t.cyclesToSeconds(cost) * 1e9;
    EXPECT_GT(ns, 231.0 * 0.75);
    EXPECT_LT(ns, 231.0 * 1.25);
}

TEST(Dpu, MramEngineSerializesBlockTransfers)
{
    // Tasklets streaming large blocks share one DMA engine, so the
    // workload must saturate well below 11x — this is what limits
    // Labyrinth's grid-copy-heavy transactions in the paper.
    auto cycles_for = [](unsigned tasklets) {
        Dpu dpu(smallDpuConfig(), TimingConfig{});
        dpu.addTasklets(tasklets, [](DpuContext &ctx) {
            for (int i = 0; i < 50; ++i)
                ctx.touchRead(Tier::Mram, 2048);
        });
        dpu.run();
        return dpu.stats().total_cycles;
    };
    const double c1 = static_cast<double>(cycles_for(1));
    const double c11 = static_cast<double>(cycles_for(11));
    // Perfect scaling would be c11 == c1; full serialization c11 == 11*c1.
    // Block streams must be clearly bandwidth-bound (sub-linear).
    EXPECT_GT(c11 / c1, 3.0);
}

TEST(Dpu, WordAccessesPipelineAcrossTasklets)
{
    // Word-granular MRAM accesses are latency- not bandwidth-bound:
    // 8 tasklets overlap their DMAs and finish close to 1-tasklet time.
    auto cycles_for = [](unsigned tasklets) {
        Dpu dpu(smallDpuConfig(), TimingConfig{});
        const u32 off = dpu.mram().alloc(4096);
        dpu.addTasklets(tasklets, [off](DpuContext &ctx) {
            for (int i = 0; i < 200; ++i)
                ctx.read32(makeAddr(Tier::Mram,
                                    off + 4 * (ctx.taskletId() * 32 +
                                               (i % 32))));
        });
        dpu.run();
        return dpu.stats().total_cycles;
    };
    const double c1 = static_cast<double>(cycles_for(1));
    const double c8 = static_cast<double>(cycles_for(8));
    EXPECT_LT(c8 / c1, 2.0);
}

TEST(Dpu, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Dpu dpu(smallDpuConfig(), TimingConfig{});
        const u32 off = dpu.mram().alloc(256);
        dpu.addTasklets(8, [off](DpuContext &ctx) {
            for (int i = 0; i < 50; ++i) {
                const u32 slot =
                    static_cast<u32>(ctx.rng().below(64)) * 4;
                const Addr a = makeAddr(Tier::Mram, off + slot);
                ctx.write32(a, ctx.read32(a) + 1);
            }
        });
        dpu.run();
        return dpu.stats().total_cycles;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Dpu, BarrierRendezvous)
{
    Dpu dpu(smallDpuConfig(), TimingConfig{});
    const u32 off = dpu.mram().alloc(4);
    dpu.mram().write32(off, 0);
    std::vector<u32> observed;
    dpu.addTasklets(6, [&, off](DpuContext &ctx) {
        // Phase 1: everyone increments; Phase 2: everyone must observe
        // the full count — only possible if the barrier is correct.
        ctx.acquire(1);
        const Addr a = makeAddr(Tier::Mram, off);
        ctx.write32(a, ctx.read32(a) + 1);
        ctx.release(1);
        ctx.barrier();
        observed.push_back(ctx.read32(a));
    });
    dpu.run();
    ASSERT_EQ(observed.size(), 6u);
    for (u32 v : observed)
        EXPECT_EQ(v, 6u);
}

TEST(Dpu, AcquireBlocksUntilRelease)
{
    Dpu dpu(smallDpuConfig(), TimingConfig{});
    const u32 off = dpu.mram().alloc(4);
    dpu.mram().write32(off, 0);
    dpu.addTasklets(8, [off](DpuContext &ctx) {
        for (int i = 0; i < 20; ++i) {
            ctx.acquire(0x42);
            const Addr a = makeAddr(Tier::Mram, off);
            // Non-atomic read-modify-write made safe by the lock.
            const u32 v = ctx.read32(a);
            ctx.compute(5);
            ctx.write32(a, v + 1);
            ctx.release(0x42);
            ctx.compute(3);
        }
    });
    dpu.run();
    EXPECT_EQ(dpu.mram().read32(off), 8u * 20u);
    EXPECT_GT(dpu.stats().atomic_stalls, 0u);
}

TEST(Dpu, PhaseAccountingSplitsCycles)
{
    Dpu dpu(smallDpuConfig(), TimingConfig{});
    dpu.addTasklet([](DpuContext &ctx) {
        ctx.setPhase(Phase::TxRead);
        ctx.compute(10);
        ctx.setPhase(Phase::TxCommit);
        ctx.compute(20);
        ctx.setPhase(Phase::NonTx);
    });
    dpu.run();
    const auto &pc = dpu.stats().phase_cycles;
    EXPECT_EQ(pc[static_cast<size_t>(Phase::TxRead)], 10u * 11u);
    EXPECT_EQ(pc[static_cast<size_t>(Phase::TxCommit)], 20u * 11u);
}

TEST(Dpu, AbortedTxCyclesBecomeWasted)
{
    Dpu dpu(smallDpuConfig(), TimingConfig{});
    dpu.addTasklet([](DpuContext &ctx) {
        ctx.txAccountingBegin();
        ctx.setPhase(Phase::TxRead);
        ctx.compute(10);
        ctx.txAccountingAbort();
        ctx.setPhase(Phase::NonTx);

        ctx.txAccountingBegin();
        ctx.setPhase(Phase::TxRead);
        ctx.compute(10);
        ctx.txAccountingCommit();
        ctx.setPhase(Phase::NonTx);
    });
    dpu.run();
    const auto &pc = dpu.stats().phase_cycles;
    EXPECT_EQ(pc[static_cast<size_t>(Phase::Wasted)], 110u);
    EXPECT_EQ(pc[static_cast<size_t>(Phase::TxRead)], 110u);
}

TEST(Dpu, RejectsTooManyTasklets)
{
    Dpu dpu(smallDpuConfig(), TimingConfig{});
    for (unsigned i = 0; i < 24; ++i)
        dpu.addTasklet([](DpuContext &) {});
    EXPECT_THROW(dpu.addTasklet([](DpuContext &) {}), FatalError);
}

TEST(Dpu, TaskletExceptionPropagates)
{
    Dpu dpu(smallDpuConfig(), TimingConfig{});
    dpu.addTasklet([](DpuContext &) { throw std::runtime_error("app"); });
    EXPECT_THROW(dpu.run(), std::runtime_error);
}
