/**
 * @file
 * Tests for the extension modules: the Skip-List workload (invariants
 * across the STM matrix), the adaptive STM selector, and the
 * transaction trace buffer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/stm_factory.hh"
#include "runtime/adaptive.hh"
#include "runtime/shared_array.hh"
#include "workloads/arraybench.hh"
#include "workloads/skiplist.hh"

using namespace pimstm;
using namespace pimstm::core;
using namespace pimstm::runtime;
using namespace pimstm::workloads;

//
// Skip-List.
//

namespace
{

class SkipListAll : public testing::TestWithParam<StmKind>
{
};

std::string
kindName(const testing::TestParamInfo<StmKind> &info)
{
    std::string s = stmKindName(info.param);
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

} // namespace

TEST_P(SkipListAll, InvariantsHoldUnderContention)
{
    SkipListParams p = SkipListParams::highContention(25);
    SkipList wl(p);
    RunSpec s;
    s.kind = GetParam();
    s.tasklets = 6;
    s.seed = 17;
    s.mram_bytes = 8 * 1024 * 1024;
    const auto r = runWorkload(wl, s); // verify() checks the structure
    EXPECT_EQ(r.stm.commits, 6u * 25u);
}

TEST_P(SkipListAll, ReadMostlyMixCommitsReadOnly)
{
    SkipListParams p = SkipListParams::lowContention(25);
    SkipList wl(p);
    RunSpec s;
    s.kind = GetParam();
    s.tasklets = 4;
    s.seed = 23;
    s.mram_bytes = 8 * 1024 * 1024;
    const auto r = runWorkload(wl, s);
    EXPECT_GT(r.stm.read_only_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SkipListAll,
                         testing::ValuesIn(allStmKinds()), kindName);

TEST(SkipListTest, HeightsAreDeterministicAndBounded)
{
    SkipListParams p;
    SkipList wl(p);
    u64 tall = 0;
    for (u32 v = 0; v < 1000; ++v) {
        const u32 h = wl.heightFor(v);
        EXPECT_GE(h, 1u);
        EXPECT_LE(h, p.max_height);
        EXPECT_EQ(h, wl.heightFor(v)); // deterministic
        if (h > 1)
            ++tall;
    }
    // Geometric distribution: roughly half the keys have height > 1.
    EXPECT_GT(tall, 300u);
    EXPECT_LT(tall, 700u);
}

TEST(SkipListTest, DeterministicReplay)
{
    auto run_once = [] {
        SkipListParams p = SkipListParams::highContention(20);
        SkipList wl(p);
        RunSpec s;
        s.kind = StmKind::TinyEtlWb;
        s.tasklets = 5;
        s.seed = 31;
        s.mram_bytes = 8 * 1024 * 1024;
        const auto r = runWorkload(wl, s);
        return std::make_pair(r.dpu.total_cycles, r.stm.aborts);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(SkipListTest, LogarithmicTraversalsBeatLinearAtScale)
{
    // The reason to have a skip list at all: at equal set sizes, its
    // transactions read far fewer locations than the linked list's.
    SkipListParams p = SkipListParams::lowContention(30);
    p.initial_size = 64;
    SkipList wl(p);
    RunSpec s;
    s.tasklets = 4;
    s.mram_bytes = 8 * 1024 * 1024;
    const auto r = runWorkload(wl, s);
    const double reads_per_tx =
        static_cast<double>(r.stm.reads) /
        static_cast<double>(r.stm.commits + r.stm.aborts);
    // A 64-element sorted linked list averages ~64 reads per contains;
    // the skip list must be far below that.
    EXPECT_LT(reads_per_tx, 40.0);
}

//
// Adaptive selection.
//

TEST(AdaptiveTest, PicksARunnableKindAndRuns)
{
    AdaptiveFactory factory =
        [](bool probe) -> std::unique_ptr<Workload> {
        return std::make_unique<ArrayBench>(
            ArrayBenchParams::workloadB(probe ? 10 : 40));
    };
    RunSpec spec;
    spec.tasklets = 6;
    spec.mram_bytes = 8 * 1024 * 1024;
    const AdaptiveResult r = adaptiveRun(factory, spec);
    EXPECT_FALSE(r.probe_throughput.empty());
    EXPECT_GT(r.probe_seconds, 0.0);
    EXPECT_GT(r.final.throughput, 0.0);
    EXPECT_EQ(r.final.stm.commits, 6u * 40u);
}

TEST(AdaptiveTest, ChoiceMatchesBestProbe)
{
    AdaptiveFactory factory =
        [](bool probe) -> std::unique_ptr<Workload> {
        return std::make_unique<ArrayBench>(
            ArrayBenchParams::workloadA(probe ? 4 : 10));
    };
    RunSpec spec;
    spec.tasklets = 8;
    spec.mram_bytes = 8 * 1024 * 1024;
    const AdaptiveResult r = adaptiveRun(factory, spec);

    double best = 0;
    for (const auto &[name, tput] : r.probe_throughput)
        best = std::max(best, tput);
    const std::string chosen =
        std::string(stmKindName(r.chosen_kind)) + " (MRAM)";
    ASSERT_TRUE(r.probe_throughput.count(chosen));
    EXPECT_DOUBLE_EQ(r.probe_throughput.at(chosen), best);
}

TEST(AdaptiveTest, RestrictedCandidateSetIsHonoured)
{
    AdaptiveFactory factory =
        [](bool probe) -> std::unique_ptr<Workload> {
        return std::make_unique<ArrayBench>(
            ArrayBenchParams::workloadB(probe ? 5 : 10));
    };
    RunSpec spec;
    spec.tasklets = 2;
    spec.mram_bytes = 8 * 1024 * 1024;
    AdaptiveOptions opt;
    opt.candidates = {StmKind::TinyEtlWt};
    const AdaptiveResult r = adaptiveRun(factory, spec, opt);
    EXPECT_EQ(r.chosen_kind, StmKind::TinyEtlWt);
    EXPECT_EQ(r.probe_throughput.size(), 1u);
}

TEST(AdaptiveTest, CanProbeBothTiers)
{
    AdaptiveFactory factory =
        [](bool probe) -> std::unique_ptr<Workload> {
        return std::make_unique<ArrayBench>(
            ArrayBenchParams::workloadB(probe ? 5 : 10));
    };
    RunSpec spec;
    spec.tasklets = 4;
    spec.mram_bytes = 8 * 1024 * 1024;
    AdaptiveOptions opt;
    opt.candidates = {StmKind::NOrec};
    opt.probe_both_tiers = true;
    const AdaptiveResult r = adaptiveRun(factory, spec, opt);
    EXPECT_EQ(r.probe_throughput.size(), 2u);
    // ArrayBench B metadata fits WRAM and WRAM is faster (§4.2.3).
    EXPECT_EQ(r.chosen_tier, MetadataTier::Wram);
}

//
// Trace buffer.
//

TEST(TraceTest, RecordsOrderedEventsWithCounts)
{
    sim::DpuConfig dc;
    dc.mram_bytes = 1 * 1024 * 1024;
    sim::Dpu dpu(dc, sim::TimingConfig{});
    TraceBuffer trace(1024);
    StmConfig cfg;
    cfg.num_tasklets = 3;
    cfg.trace = &trace;
    auto stm = makeStm(dpu, cfg);
    SharedArray32 arr(dpu, sim::Tier::Mram, 2);
    arr.fill(dpu, 0);

    dpu.addTasklets(3, [&](sim::DpuContext &ctx) {
        for (int i = 0; i < 5; ++i) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(0), tx.read(arr.at(0)) + 1);
            });
        }
    });
    dpu.run();

    EXPECT_EQ(trace.count(TxEvent::Commit), stm->stats().commits);
    EXPECT_EQ(trace.count(TxEvent::Abort), stm->stats().aborts);
    EXPECT_EQ(trace.count(TxEvent::Start), stm->stats().starts);
    EXPECT_EQ(trace.count(TxEvent::Read), stm->stats().reads);
    EXPECT_EQ(trace.count(TxEvent::Write), stm->stats().writes);

    const auto events = trace.snapshot();
    ASSERT_FALSE(events.empty());
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].time, events[i].time);
}

TEST(TraceTest, RingDropsOldestBeyondCapacity)
{
    TraceBuffer trace(4);
    for (u32 i = 0; i < 10; ++i)
        trace.record(i, 0, TxEvent::Read, i);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.dropped(), 6u);
    EXPECT_EQ(trace.count(TxEvent::Read), 10u);
    const auto events = trace.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().arg, 6u);
    EXPECT_EQ(events.back().arg, 9u);
}

TEST(TraceTest, DumpFormatsAndFilters)
{
    TraceBuffer trace(16);
    trace.record(100, 1, TxEvent::Start);
    trace.record(110, 1, TxEvent::Read, sim::makeAddr(sim::Tier::Mram, 64));
    trace.record(120, 2, TxEvent::Abort, 3);
    trace.record(130, 1, TxEvent::Commit);

    std::ostringstream all;
    trace.dump(all);
    EXPECT_NE(all.str().find("t1 start"), std::string::npos);
    EXPECT_NE(all.str().find("MRAM+64"), std::string::npos);
    EXPECT_NE(all.str().find("t2 abort 3"), std::string::npos);

    std::ostringstream only1;
    trace.dump(only1, 1);
    EXPECT_EQ(only1.str().find("t2"), std::string::npos);
    EXPECT_NE(only1.str().find("t1 commit"), std::string::npos);
}

TEST(TraceTest, ClearResets)
{
    TraceBuffer trace(8);
    trace.record(1, 0, TxEvent::Start);
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.count(TxEvent::Start), 0u);
    EXPECT_EQ(trace.dropped(), 0u);
}
