/**
 * @file
 * Tests for the runtime layer: SharedArray32 views, the transactional
 * work queue, stats reporting helpers, and workload parameter/unit
 * logic (ArrayBench paper constants, Labyrinth geometry, KMeans
 * configuration).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/stats_report.hh"
#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"
#include "runtime/tx_queue.hh"
#include "workloads/arraybench.hh"
#include "workloads/kmeans.hh"
#include "workloads/labyrinth.hh"
#include "workloads/linkedlist.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::runtime;

namespace
{

DpuConfig
smallDpu()
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(SharedArrayTest, AddressesAreContiguousWords)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    SharedArray32 arr(dpu, Tier::Mram, 8);
    EXPECT_EQ(arr.size(), 8u);
    for (size_t i = 1; i < 8; ++i)
        EXPECT_EQ(arr.at(i), arr.at(i - 1) + 4);
    EXPECT_EQ(addrTier(arr.at(0)), Tier::Mram);
}

TEST(SharedArrayTest, WramTierTagged)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    SharedArray32 arr(dpu, Tier::Wram, 4);
    EXPECT_EQ(addrTier(arr.at(3)), Tier::Wram);
}

TEST(SharedArrayTest, PeekPokeFillRoundTrip)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    SharedArray32 arr(dpu, Tier::Mram, 4);
    arr.fill(dpu, 7);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(arr.peek(dpu, i), 7u);
    arr.poke(dpu, 2, 99);
    EXPECT_EQ(arr.peek(dpu, 2), 99u);
}

TEST(SharedArrayTest, OutOfRangePanics)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    SharedArray32 arr(dpu, Tier::Mram, 4);
    EXPECT_THROW(arr.at(4), PanicError);
}

TEST(TxQueueTest, EveryTicketDispensedExactlyOnce)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    core::StmConfig cfg;
    cfg.kind = core::StmKind::NOrec;
    cfg.num_tasklets = 6;
    auto stm = core::makeStm(dpu, cfg);
    TxQueue queue(dpu, Tier::Mram, 50);

    std::vector<int> claimed(50, 0);
    dpu.addTasklets(6, [&](DpuContext &ctx) {
        for (;;) {
            const s64 t = queue.pop(*stm, ctx);
            if (t < 0)
                return;
            ++claimed[static_cast<size_t>(t)];
        }
    });
    dpu.run();
    for (int c : claimed)
        EXPECT_EQ(c, 1);
}

TEST(TxQueueTest, DrainedQueueReturnsMinusOne)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    core::StmConfig cfg;
    cfg.num_tasklets = 1;
    auto stm = core::makeStm(dpu, cfg);
    TxQueue queue(dpu, Tier::Mram, 2);

    std::vector<s64> seen;
    dpu.addTasklet([&](DpuContext &ctx) {
        for (int i = 0; i < 4; ++i)
            seen.push_back(queue.pop(*stm, ctx));
    });
    dpu.run();
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[0], 0);
    EXPECT_EQ(seen[1], 1);
    EXPECT_EQ(seen[2], -1);
    EXPECT_EQ(seen[3], -1);
}

TEST(StatsReport, FormatsRatesAndDurations)
{
    using core::formatRate;
    using core::formatSeconds;
    EXPECT_EQ(formatRate(1.5e9), "1.50 Gtx/s");
    EXPECT_EQ(formatRate(2.5e6), "2.50 Mtx/s");
    EXPECT_EQ(formatRate(3.1e3), "3.10 Ktx/s");
    EXPECT_EQ(formatRate(42.0), "42.00 tx/s");
    EXPECT_EQ(formatSeconds(2.0), "2.00 s");
    EXPECT_EQ(formatSeconds(2e-3), "2.00 ms");
    EXPECT_EQ(formatSeconds(2e-6), "2.00 us");
    EXPECT_EQ(formatSeconds(2e-9), "2.00 ns");
}

TEST(StatsReport, ReportMentionsKeyCounters)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    core::StmConfig cfg;
    cfg.num_tasklets = 2;
    auto stm = core::makeStm(dpu, cfg);
    SharedArray32 arr(dpu, Tier::Mram, 2);
    arr.fill(dpu, 0);
    dpu.addTasklets(2, [&](DpuContext &ctx) {
        for (int i = 0; i < 10; ++i) {
            core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                tx.write(arr.at(0), tx.read(arr.at(0)) + 1);
            });
        }
    });
    dpu.run();

    std::ostringstream os;
    core::printReport(os, stm->stats(), dpu.stats(), dpu.timing());
    const std::string out = os.str();
    EXPECT_NE(out.find("commits"), std::string::npos);
    EXPECT_NE(out.find("time breakdown"), std::string::npos);
    EXPECT_NE(out.find("MRAM reads"), std::string::npos);
}

//
// Workload units.
//

TEST(ArrayBenchParamsTest, PaperConstants)
{
    const auto a = workloads::ArrayBenchParams::workloadA();
    EXPECT_EQ(a.region_y, 2500u);
    EXPECT_EQ(a.region_k, 10000u);
    EXPECT_EQ(a.totalWords(), 12500u);
    EXPECT_EQ(a.read_ops, 100u);
    EXPECT_EQ(a.rmw_ops, 20u);

    const auto b = workloads::ArrayBenchParams::workloadB();
    EXPECT_EQ(b.region_y, 0u);
    EXPECT_EQ(b.region_k, 10u);
    EXPECT_EQ(b.rmw_ops, 4u);
}

TEST(LinkedListParamsTest, PaperConstants)
{
    const auto lc = workloads::LinkedListParams::lowContention();
    EXPECT_DOUBLE_EQ(lc.contains_ratio, 0.9);
    EXPECT_EQ(lc.ops_per_tasklet, 100u);
    EXPECT_EQ(lc.initial_size, 10u);
    const auto hc = workloads::LinkedListParams::highContention();
    EXPECT_DOUBLE_EQ(hc.contains_ratio, 0.5);
}

TEST(KMeansParamsTest, PaperConstants)
{
    const auto lc = workloads::KMeansParams::lowContention();
    EXPECT_EQ(lc.clusters, 15u);
    EXPECT_EQ(lc.dims, 14u);
    const auto hc = workloads::KMeansParams::highContention();
    EXPECT_EQ(hc.clusters, 2u);
    EXPECT_EQ(hc.dims, 14u);
}

TEST(LabyrinthParamsTest, PaperGridSizes)
{
    const auto s = workloads::LabyrinthParams::small();
    EXPECT_EQ(s.cells(), 16u * 16 * 3);
    EXPECT_EQ(s.num_paths, 100u);
    const auto m = workloads::LabyrinthParams::medium();
    EXPECT_EQ(m.cells(), 32u * 32 * 3);
    const auto l = workloads::LabyrinthParams::large();
    EXPECT_EQ(l.cells(), 128u * 128 * 3);
}

TEST(LabyrinthGeometry, NeighborsAreMutual)
{
    workloads::LabyrinthParams p = workloads::LabyrinthParams::small(1);
    workloads::Labyrinth lab(p);
    // Exercise via a tiny run so the object is fully constructed, then
    // spot-check geometry through verify-reachable behaviour: instead,
    // check coordinates round-trip via cell arithmetic.
    for (u32 cell : {0u, 1u, 15u, 16u, 255u, 256u, 767u}) {
        const u32 cx = cell % p.x;
        const u32 cy = (cell / p.x) % p.y;
        const u32 cz = cell / (p.x * p.y);
        EXPECT_EQ((cz * p.y + cy) * p.x + cx, cell);
        EXPECT_LT(cx, p.x);
        EXPECT_LT(cy, p.y);
        EXPECT_LT(cz, p.z);
    }
}
