/**
 * @file
 * Tests for the transactional-boosting library (runtime/boosted.hh):
 * fiber-free plan checks (BoostedPlan.*, the TSan suite), abstract-lock
 * protocol behaviour, randomized differential runs of boosted vs
 * word-based structures across the full STM matrix, semantic undo
 * under injected aborts and crashes, and the boosted workload paths'
 * own verification.
 */

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/stm_factory.hh"
#include "runtime/boosted.hh"
#include "runtime/driver.hh"
#include "runtime/tx_hashmap.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workloads/skiplist.hh"
#include "workloads/vacation.hh"

using namespace pimstm;
using namespace pimstm::core;
using namespace pimstm::runtime;
using namespace pimstm::sim;

namespace
{

DpuConfig
smallDpu()
{
    DpuConfig cfg;
    cfg.mram_bytes = 2 * 1024 * 1024;
    return cfg;
}

std::unique_ptr<Stm>
makeBoostedStm(Dpu &dpu, StmKind kind, unsigned tasklets)
{
    StmConfig cfg;
    cfg.kind = kind;
    cfg.num_tasklets = tasklets;
    cfg.max_read_set = 128;
    cfg.max_write_set = 32;
    cfg.boosting = true;
    return makeStm(dpu, cfg);
}

std::string
kindName(const testing::TestParamInfo<StmKind> &info)
{
    std::string s = stmKindName(info.param);
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

} // namespace

//
// BoostedPlan: fiber-free host-pure logic (runs under TSan — no
// simulated tasklets execute in these tests).
//

TEST(BoostedPlan, StripeHashIsDeterministicAndSpreads)
{
    std::set<u32> stripes;
    for (u32 key = 0; key < 1024; ++key) {
        const u32 h1 = AbstractLockManager::stripeHash(key);
        const u32 h2 = AbstractLockManager::stripeHash(key);
        EXPECT_EQ(h1, h2);
        stripes.insert(h1 & 63u);
    }
    // 1024 keys over 64 stripes: a hash this badly skewed would break
    // the commutativity win, so require near-full stripe coverage.
    EXPECT_GE(stripes.size(), 60u);
}

TEST(BoostedPlan, LatchKeysDistinctAcrossStructuresAndInstances)
{
    std::set<u32> keys;
    for (u32 sid = 0; sid < kNumStructures; ++sid)
        for (u32 inst = 0; inst < 16; ++inst)
            keys.insert(boostLatchKey(static_cast<StructureId>(sid),
                                      inst));
    EXPECT_EQ(keys.size(), kNumStructures * 16);
}

TEST(BoostedPlan, ManagerStartsQuiescentAndValidatesStripes)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.num_tasklets = 1;
    cfg.boosting = true;
    auto stm = makeStm(dpu, cfg);
    AbstractLockManager locks(dpu, *stm, StructureId::Map, 64);
    EXPECT_TRUE(locks.quiescent());
    EXPECT_EQ(locks.numStripes(), 64u);
    for (u32 key = 0; key < 256; ++key)
        EXPECT_LT(locks.stripeOf(key), 64u);
}

TEST(BoostedPlan, NonPowerOfTwoStripesRejected)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.num_tasklets = 1;
    cfg.boosting = true;
    auto stm = makeStm(dpu, cfg);
    EXPECT_THROW(AbstractLockManager(dpu, *stm, StructureId::Map, 48),
                 FatalError);
}

//
// Abstract-lock protocol (fiber-based).
//

class BoostedLockAll : public testing::TestWithParam<StmKind>
{
};

TEST_P(BoostedLockAll, SharedHoldersCommuteExclusiveWaits)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeBoostedStm(dpu, GetParam(), 4);
    AbstractLockManager locks(dpu, *stm, StructureId::Map, 64);

    // Tasklets repeatedly take overlapping shared/exclusive stripe
    // holds; the run must terminate (timeout aborts break deadlocks)
    // with consistent counters and a quiescent lock table.
    dpu.addTasklets(4, [&](DpuContext &ctx) {
        for (u32 i = 0; i < 20; ++i) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                const bool exclusive = (i + ctx.taskletId()) % 3 == 0;
                locks.acquireKey(tx, i % 8, exclusive);
                locks.acquireKey(tx, i % 8, exclusive); // reentrant
            });
        }
    });
    dpu.run();
    EXPECT_TRUE(locks.quiescent());
    EXPECT_EQ(stm->stats().commits, 4u * 20u);
    EXPECT_GT(stm->stats().boosted_acquires, 0u);
}

TEST_P(BoostedLockAll, UpgradeSharedToExclusiveInPlace)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeBoostedStm(dpu, GetParam(), 1);
    AbstractLockManager locks(dpu, *stm, StructureId::Map, 64);
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx, [&](TxHandle &tx) {
            locks.acquireKey(tx, 5, false);
            locks.acquireKey(tx, 5, true); // upgrade
            locks.acquireKey(tx, 5, false); // covered by exclusive
        });
    });
    dpu.run();
    EXPECT_TRUE(locks.quiescent());
    EXPECT_EQ(stm->stats().commits, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BoostedLockAll,
                         testing::ValuesIn(allStmKindsExtended()),
                         kindName);

//
// BoostedMap / BoostedSet: randomized differential runs against the
// word-based TxHashMap under every STM kind. Tasklets mutate disjoint
// key ranges (mutations commute) and look up across ranges, so the
// final state is independent of interleaving and must match exactly.
//

class BoostedMapAll : public testing::TestWithParam<StmKind>
{
  protected:
    /** Final state of a partitioned random run; host reference. */
    std::map<u32, u32>
    runPartitioned(bool boosted, const FaultPlan &faults,
                   std::map<u32, u32> *reference = nullptr)
    {
        DpuConfig dc = smallDpu();
        dc.faults = faults;
        dc.seed = 99;
        Dpu dpu(dc, TimingConfig{});
        StmConfig cfg;
        cfg.kind = GetParam();
        cfg.num_tasklets = 4;
        cfg.max_read_set = 160;
        cfg.max_write_set = 32;
        cfg.boosting = boosted;
        auto stm = makeStm(dpu, cfg);
        TxHashMap map(dpu, Tier::Mram, 256);
        std::unique_ptr<BoostedMap> bmap;
        if (boosted)
            bmap = std::make_unique<BoostedMap>(dpu, *stm, map);

        // Per-tasklet deterministic op streams over disjoint key
        // ranges [t*64, t*64+48).
        std::array<std::map<u32, u32>, 4> expect;
        dpu.addTasklets(4, [&](DpuContext &ctx) {
            const u32 t = ctx.taskletId();
            Rng rng(deriveSeed(1234, t));
            for (u32 i = 0; i < 120; ++i) {
                // 32 live keys per tasklet keeps the 256-slot table at
                // <= 0.5 load, so word-mode probe chains stay well
                // inside the configured read-set budget.
                const u32 key = t * 64 + static_cast<u32>(rng.below(32));
                const u32 pick = static_cast<u32>(rng.below(10));
                if (pick < 5) {
                    const u32 value = key * 7 + pick;
                    bool ok = false;
                    atomically(*stm, ctx, [&](TxHandle &tx) {
                        ok = boosted ? bmap->insert(tx, key, value)
                                     : map.insert(tx, key, value);
                    });
                    if (ok)
                        expect[t][key] = value;
                } else if (pick < 8) {
                    bool ok = false;
                    atomically(*stm, ctx, [&](TxHandle &tx) {
                        ok = boosted ? bmap->erase(tx, key)
                                     : map.erase(tx, key);
                    });
                    if (ok)
                        expect[t].erase(key);
                } else {
                    // Cross-range lookup: contended but read-only.
                    const u32 other = (key + 64) % 256;
                    u32 v = 0;
                    atomically(*stm, ctx, [&](TxHandle &tx) {
                        boosted ? bmap->lookup(tx, other, v)
                                : map.lookup(tx, other, v);
                    });
                }
            }
        });
        dpu.run();
        if (boosted) {
            EXPECT_TRUE(bmap->locks().quiescent());
        }

        if (reference) {
            reference->clear();
            for (const auto &e : expect)
                reference->insert(e.begin(), e.end());
        }

        // Read the final state back without timing.
        std::map<u32, u32> state;
        for (u32 key = 0; key < 256; ++key) {
            u32 v = 0;
            if (map.peekValue(dpu, key, v))
                state[key] = v;
        }
        return state;
    }
};

TEST_P(BoostedMapAll, DifferentialMatchesWordBasedAndReference)
{
    std::map<u32, u32> reference;
    const auto word = runPartitioned(false, FaultPlan{}, &reference);
    const auto boosted = runPartitioned(true, FaultPlan{});
    EXPECT_EQ(word, reference);
    EXPECT_EQ(boosted, reference);
}

TEST_P(BoostedMapAll, SemanticUndoRestoresStateUnderInjectedAborts)
{
    // An abort storm forces semantic undo replay on most transactions;
    // the final state must still match the committed-ops reference.
    const FaultPlan faults =
        FaultPlan::parse("seed=5;abort=300");
    std::map<u32, u32> reference;
    const auto boosted = runPartitioned(true, faults, &reference);
    EXPECT_EQ(boosted, reference);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BoostedMapAll,
                         testing::ValuesIn(allStmKindsExtended()),
                         kindName);

TEST(BoostedSetTest, AddContainsRemoveSemantics)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeBoostedStm(dpu, StmKind::NOrec, 1);
    TxHashMap map(dpu, Tier::Mram, 64);
    BoostedSet set(dpu, *stm, map);
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx, [&](TxHandle &tx) {
            EXPECT_TRUE(set.add(tx, 7));
            EXPECT_FALSE(set.add(tx, 7)); // already present
            EXPECT_TRUE(set.contains(tx, 7));
            EXPECT_FALSE(set.contains(tx, 8));
            EXPECT_TRUE(set.remove(tx, 7));
            EXPECT_FALSE(set.remove(tx, 7));
        });
    });
    dpu.run();
    EXPECT_TRUE(set.locks().quiescent());
}

//
// Sharded size counters (satellite: TxHashMap::size()).
//

TEST(TxHashMapSize, ShardedCountersTrackSizeTransactionally)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    StmConfig cfg;
    cfg.num_tasklets = 5; // 4 workers + the later size-reading tasklet
    cfg.max_read_set = 128;
    auto stm = makeStm(dpu, cfg);
    TxHashMap map(dpu, Tier::Mram, 256);
    map.enableSizeCounters(dpu, Tier::Mram, 4);

    dpu.addTasklets(4, [&](DpuContext &ctx) {
        const u32 t = ctx.taskletId();
        for (u32 i = 0; i < 20; ++i) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                map.insert(tx, t * 32 + i, i);
            });
        }
        for (u32 i = 0; i < 5; ++i) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                map.erase(tx, t * 32 + i);
            });
        }
    });
    dpu.run();

    u32 size = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx,
                   [&](TxHandle &tx) { size = map.size(tx); });
    });
    dpu.run();
    EXPECT_EQ(size, 4u * 15u);
}

TEST(TxHashMapSize, BoostedSizeSumsShardsUnderFullSharedLock)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    // 2 workers + the later size-reading tasklet.
    auto stm = makeBoostedStm(dpu, StmKind::TinyEtlWb, 3);
    TxHashMap map(dpu, Tier::Mram, 128);
    map.enableSizeCounters(dpu, Tier::Mram, 4);
    BoostedMap bmap(dpu, *stm, map);

    dpu.addTasklets(2, [&](DpuContext &ctx) {
        const u32 t = ctx.taskletId();
        for (u32 i = 0; i < 10; ++i) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                bmap.insert(tx, t * 16 + i, i);
            });
        }
    });
    dpu.run();

    u32 size = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx,
                   [&](TxHandle &tx) { size = bmap.size(tx); });
    });
    dpu.run();
    EXPECT_EQ(size, 20u);
    EXPECT_TRUE(bmap.locks().quiescent());
}

TEST(TxHashMapSize, EnableTwiceOrNonEmptyPanics)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    TxHashMap map(dpu, Tier::Mram, 64);
    map.enableSizeCounters(dpu, Tier::Mram, 2);
    EXPECT_THROW(map.enableSizeCounters(dpu, Tier::Mram, 2),
                 PanicError);

    TxHashMap map2(dpu, Tier::Mram, 64);
    StmConfig cfg;
    cfg.num_tasklets = 1;
    auto stm = makeStm(dpu, cfg);
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(*stm, ctx,
                   [&](TxHandle &tx) { map2.insert(tx, 1, 1); });
    });
    dpu.run();
    EXPECT_THROW(map2.enableSizeCounters(dpu, Tier::Mram, 2),
                 PanicError);
}

//
// BoostedQueue.
//

class BoostedQueueAll : public testing::TestWithParam<StmKind>
{
};

TEST_P(BoostedQueueAll, ConservationAndFifoPerProducer)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    auto stm = makeBoostedStm(dpu, GetParam(), 4);
    BoostedQueue q(dpu, *stm, Tier::Mram, 1024);

    // Two producers, two consumers. Each produced value encodes
    // (producer, sequence); consumers record what they pop.
    std::array<std::vector<u32>, 4> popped;
    dpu.addTasklets(4, [&](DpuContext &ctx) {
        const u32 t = ctx.taskletId();
        if (t < 2) {
            for (u32 i = 0; i < 50; ++i) {
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    q.enqueue(tx, (t << 16) | i);
                });
            }
        } else {
            for (u32 i = 0; i < 40; ++i) {
                u32 v = 0;
                bool ok = false;
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    ok = q.dequeue(tx, v);
                });
                if (ok)
                    popped[t].push_back(v);
            }
        }
    });
    dpu.run();
    EXPECT_TRUE(q.locks().quiescent());

    size_t total_popped = 0;
    std::set<u32> seen;
    for (const auto &p : popped) {
        total_popped += p.size();
        for (u32 v : p)
            EXPECT_TRUE(seen.insert(v).second) // popped exactly once
                << "value popped twice: " << v;
    }
    EXPECT_EQ(q.sizeHost(dpu), static_cast<u32>(100 - total_popped));

    // FIFO per producer: each consumer sees a producer's values in
    // strictly increasing sequence order.
    for (const auto &p : popped) {
        for (u32 producer = 0; producer < 2; ++producer) {
            s64 prev = -1;
            for (u32 v : p) {
                if ((v >> 16) != producer)
                    continue;
                EXPECT_GT(static_cast<s64>(v & 0xffffu), prev);
                prev = static_cast<s64>(v & 0xffffu);
            }
        }
    }
}

TEST_P(BoostedQueueAll, UndoRetreatsPointersUnderInjectedAborts)
{
    DpuConfig dc = smallDpu();
    dc.faults = FaultPlan::parse("seed=11;abort=250");
    dc.seed = 7;
    Dpu dpu(dc, TimingConfig{});
    auto stm = makeBoostedStm(dpu, GetParam(), 2);
    BoostedQueue q(dpu, *stm, Tier::Mram, 256);

    u64 enq = 0, deq = 0;
    dpu.addTasklets(2, [&](DpuContext &ctx) {
        const u32 t = ctx.taskletId();
        for (u32 i = 0; i < 30; ++i) {
            if (t == 0) {
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    q.enqueue(tx, i);
                });
                ++enq;
            } else {
                u32 v = 0;
                bool ok = false;
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    ok = q.dequeue(tx, v);
                });
                if (ok)
                    ++deq;
            }
        }
    });
    dpu.run();
    EXPECT_TRUE(q.locks().quiescent());
    EXPECT_EQ(q.sizeHost(dpu), static_cast<u32>(enq - deq));
    EXPECT_GT(stm->stats().semantic_undos, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BoostedQueueAll,
                         testing::ValuesIn(allStmKindsExtended()),
                         kindName);

//
// Boosted workload paths: the workloads' own verify() is the oracle
// (exact size + sortedness for the skip list, availability accounting
// for vacation).
//

class BoostedWorkloadsAll : public testing::TestWithParam<StmKind>
{
};

TEST_P(BoostedWorkloadsAll, SkipListInvariantsHoldBoosted)
{
    workloads::SkipListParams p =
        workloads::SkipListParams::highContention(25);
    workloads::SkipList wl(p);
    RunSpec s;
    s.kind = GetParam();
    s.tasklets = 6;
    s.seed = 17;
    s.mram_bytes = 8 * 1024 * 1024;
    s.boosting = true;
    const auto r = runWorkload(wl, s); // verify() checks the structure
    EXPECT_EQ(r.stm.commits, 6u * 25u);
    EXPECT_GT(r.stm.boosted_acquires, 0u);
}

TEST_P(BoostedWorkloadsAll, SkipListSurvivesFaultPlanBoosted)
{
    workloads::SkipListParams p =
        workloads::SkipListParams::highContention(20);
    workloads::SkipList wl(p);
    RunSpec s;
    s.kind = GetParam();
    s.tasklets = 4;
    s.seed = 29;
    s.mram_bytes = 8 * 1024 * 1024;
    s.boosting = true;
    s.faults = FaultPlan::parse("seed=3;abort=200;acq-delay=60:200");
    runWorkload(wl, s); // verify() must still pass
}

TEST_P(BoostedWorkloadsAll, VacationAccountingHoldsBoosted)
{
    workloads::VacationParams p =
        workloads::VacationParams::highContention(20);
    workloads::Vacation wl(p);
    RunSpec s;
    s.kind = GetParam();
    s.tasklets = 6;
    s.seed = 41;
    s.mram_bytes = 8 * 1024 * 1024;
    s.boosting = true;
    const auto r = runWorkload(wl, s); // verify() checks accounting
    EXPECT_EQ(r.stm.commits, 6u * 20u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BoostedWorkloadsAll,
                         testing::ValuesIn(allStmKindsExtended()),
                         kindName);

//
// Equivalence: a boosting-off run must not change behaviour (the
// CI-level bitwise gate on the figure CSVs is the strong version; this
// is the in-tree smoke check).
//

TEST(BoostedOff, WordBasedRunsUnchangedWithBoostingFlagOff)
{
    workloads::SkipListParams p =
        workloads::SkipListParams::highContention(15);
    RunSpec s;
    s.kind = StmKind::NOrec;
    s.tasklets = 4;
    s.seed = 5;
    s.mram_bytes = 8 * 1024 * 1024;

    workloads::SkipList a(p);
    const auto base = runWorkload(a, s);
    RunSpec s_off = s;
    s_off.boosting = false; // explicit off == default
    workloads::SkipList b(p);
    const auto off = runWorkload(b, s_off);
    EXPECT_EQ(base.stm.commits, off.stm.commits);
    EXPECT_EQ(base.stm.aborts, off.stm.aborts);
    EXPECT_EQ(base.dpu.total_cycles, off.dpu.total_cycles);
    EXPECT_EQ(off.stm.boosted_acquires, 0u);
}
