/**
 * @file
 * Robustness-layer tests: the fault-plan grammar, deterministic fault
 * replay, the empty-plan bitwise-identity guarantee, crash-mid-
 * transaction metadata release across every STM kind, the progress
 * watchdog (constructed deadlock and livelock), and the serial-
 * irrevocable fallback's termination guarantee under a 100%-abort
 * storm.
 *
 * The FaultPlan.* suite is fiber-free (plain parsing); everything else
 * drives full simulated DPUs.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/stm_factory.hh"
#include "runtime/driver.hh"
#include "runtime/shared_array.hh"
#include "sim/fault.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;
using pimstm::runtime::SharedArray32;

TEST(FaultPlan, EmptyAndNoneSpecsInjectNothing)
{
    EXPECT_TRUE(FaultPlan{}.empty());
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("none").empty());
    EXPECT_TRUE(FaultPlan::parse("seed=42").empty())
        << "a seed alone schedules no fault";
}

TEST(FaultPlan, ParsesCombinedSpec)
{
    const auto p = FaultPlan::parse(
        "seed=7;stall=3@1000:500;stall=*@2000:100;crash=0@12;"
        "acq-delay=250:64;abort=40");
    EXPECT_FALSE(p.empty());
    EXPECT_EQ(p.seed, 7u);
    ASSERT_EQ(p.stalls.size(), 2u);
    EXPECT_EQ(p.stalls[0].tid, 3u);
    EXPECT_EQ(p.stalls[0].at_instrs, 1000u);
    EXPECT_EQ(p.stalls[0].cycles, 500u);
    EXPECT_EQ(p.stalls[1].tid, kAllTasklets);
    ASSERT_EQ(p.crashes.size(), 1u);
    EXPECT_EQ(p.crashes[0].tid, 0u);
    EXPECT_EQ(p.crashes[0].at_op, 12u);
    EXPECT_EQ(p.acq_delay_permille, 250u);
    EXPECT_EQ(p.acq_delay_cycles, 64u);
    EXPECT_EQ(p.abort_permille, 40u);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("banana=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stall"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stall=1000:500"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stall=0@1000:0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stall=24@1000:500"), FatalError);
    EXPECT_THROW(FaultPlan::parse("crash=0@0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("crash=x@5"), FatalError);
    EXPECT_THROW(FaultPlan::parse("acq-delay=1001:10"), FatalError);
    EXPECT_THROW(FaultPlan::parse("acq-delay=10:0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("abort=1001"), FatalError);
    EXPECT_THROW(FaultPlan::parse("seed=99999999999999999999"),
                 FatalError);
}

namespace
{

/** Equality over simulated DpuStats, fault counters included. */
void
expectSameSimulatedStats(const DpuStats &a, const DpuStats &b)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    for (size_t p = 0; p < kNumPhases; ++p)
        EXPECT_EQ(a.phase_cycles[p], b.phase_cycles[p]) << "phase " << p;
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.wram_accesses, b.wram_accesses);
    EXPECT_EQ(a.mram_reads, b.mram_reads);
    EXPECT_EQ(a.mram_writes, b.mram_writes);
    EXPECT_EQ(a.atomic_acquires, b.atomic_acquires);
    EXPECT_EQ(a.atomic_stalls, b.atomic_stalls);
    EXPECT_EQ(a.atomic_stall_cycles, b.atomic_stall_cycles);
    EXPECT_EQ(a.injected_stalls, b.injected_stalls);
    EXPECT_EQ(a.injected_stall_cycles, b.injected_stall_cycles);
    EXPECT_EQ(a.injected_acq_delays, b.injected_acq_delays);
    EXPECT_EQ(a.injected_acq_delay_cycles, b.injected_acq_delay_cycles);
    EXPECT_EQ(a.tasklet_crashes, b.tasklet_crashes);
}

void
expectSameStmStats(const StmStats &a, const StmStats &b)
{
    EXPECT_EQ(a.starts, b.starts);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.aborts, b.aborts);
    for (size_t r = 0; r < kNumAbortReasons; ++r)
        EXPECT_EQ(a.abort_reasons[r], b.abort_reasons[r]) << "reason " << r;
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.escalations, b.escalations);
    EXPECT_EQ(a.serial_commits, b.serial_commits);
    EXPECT_EQ(a.injected_aborts, b.injected_aborts);
    EXPECT_EQ(a.crashes, b.crashes);
}

runtime::RunResult
runArrayBenchB(const runtime::RunSpec &spec, u32 tx_per_tasklet)
{
    workloads::ArrayBench wl(
        workloads::ArrayBenchParams::workloadB(tx_per_tasklet));
    return runtime::runWorkload(wl, spec);
}

} // namespace

TEST(FaultInjection, SamePlanReplaysBitwiseIdentically)
{
    runtime::RunSpec spec;
    spec.kind = StmKind::TinyEtlWb;
    spec.tasklets = 8;
    spec.mram_bytes = 4 * 1024 * 1024;
    spec.faults = FaultPlan::parse(
        "seed=9;stall=*@100:700;acq-delay=100:200;abort=50");

    const auto a = runArrayBenchB(spec, 30);
    const auto b = runArrayBenchB(spec, 30);
    expectSameSimulatedStats(a.dpu, b.dpu);
    expectSameStmStats(a.stm, b.stm);

    // The plan must actually have injected something, or this test
    // proves nothing.
    EXPECT_GT(a.dpu.injected_stalls, 0u);
    EXPECT_GT(a.dpu.injected_acq_delays, 0u);
    EXPECT_GT(a.stm.injected_aborts, 0u);
}

TEST(FaultInjection, EmptyPlanAndArmedWatchdogAreBitwiseIdentical)
{
    runtime::RunSpec plain;
    plain.kind = StmKind::NOrec;
    plain.tasklets = 8;
    plain.mram_bytes = 4 * 1024 * 1024;

    // Empty plan, armed-but-silent watchdog: every robustness feature
    // is reachable but must not perturb the simulation at all.
    runtime::RunSpec armed = plain;
    armed.faults = FaultPlan::parse("none");
    armed.watchdog_cycles = ~Cycles{0} / 2;

    const auto a = runArrayBenchB(plain, 40);
    const auto b = runArrayBenchB(armed, 40);
    expectSameSimulatedStats(a.dpu, b.dpu);
    expectSameStmStats(a.stm, b.stm);
    EXPECT_EQ(b.dpu.injected_stalls, 0u);
    EXPECT_EQ(b.dpu.tasklet_crashes, 0u);
    EXPECT_EQ(b.stm.injected_aborts, 0u);
    EXPECT_EQ(b.stm.escalations, 0u);
}

namespace
{

struct KindParam
{
    StmKind kind;
};

std::string
kindName(const testing::TestParamInfo<KindParam> &info)
{
    std::string s = stmKindName(info.param.kind);
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

std::vector<KindParam>
allKindParams()
{
    std::vector<KindParam> ps;
    for (StmKind k : allStmKindsExtended())
        ps.push_back({k});
    return ps;
}

class FaultInjectionPerKind : public testing::TestWithParam<KindParam>
{
};

} // namespace

TEST_P(FaultInjectionPerKind, CrashMidTransactionReleasesAllOwnership)
{
    constexpr unsigned kTasklets = 4;
    constexpr u32 kCells = 64;

    DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 << 20;
    // Op 7 of the first transaction: start, then three read/write
    // pairs — the crash lands at the fourth write, with read and write
    // ownership (ETL / VR) or a populated write set (CTL) in flight.
    dpu_cfg.faults = FaultPlan::parse("crash=*@7");
    Dpu dpu(dpu_cfg, TimingConfig{});

    StmConfig cfg;
    cfg.kind = GetParam().kind;
    cfg.num_tasklets = kTasklets;
    cfg.max_read_set = 32;
    cfg.max_write_set = 16;
    cfg.data_words_hint = kCells;
    auto stm = makeStm(dpu, cfg);

    SharedArray32 cells(dpu, Tier::Mram, kCells);
    cells.fill(dpu, 0);

    dpu.addTasklets(kTasklets, [&](DpuContext &ctx) {
        const unsigned me = ctx.taskletId();
        for (unsigned op = 0; op < 10; ++op) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                for (u32 i = 0; i < 8; ++i) {
                    const u32 c = (me * 16 + op + i) % kCells;
                    const u32 v = tx.read(cells.at(c));
                    tx.write(cells.at(c), v + 1);
                }
            });
        }
    });
    dpu.run();

    // Every tasklet crashed inside its first transaction...
    EXPECT_EQ(dpu.stats().tasklet_crashes, kTasklets);
    EXPECT_EQ(stm->stats().crashes, kTasklets);
    EXPECT_EQ(stm->stats().commits, 0u);
    ASSERT_EQ(dpu.taskletFaults().size(), kTasklets);
    for (const auto &f : dpu.taskletFaults())
        EXPECT_TRUE(f.injected_crash);

    // ...releasing every ownership record (seqlock / ORec / rw-lock)
    // and undoing every write-through store on the way out.
    EXPECT_EQ(stm->heldOwnershipCount(), 0u)
        << "crashed transactions left metadata locked";
    for (u32 c = 0; c < kCells; ++c)
        EXPECT_EQ(cells.peek(dpu, c), 0u) << "cell " << c;
}

TEST_P(FaultInjectionPerKind, SerialFallbackTerminatesTotalAbortStorm)
{
    runtime::RunSpec spec;
    spec.kind = GetParam().kind;
    spec.tasklets = 6;
    spec.mram_bytes = 4 * 1024 * 1024;
    // Every injectable operation of every optimistic attempt aborts;
    // only the serial-irrevocable fallback can make progress.
    spec.faults = FaultPlan::parse("abort=1000");
    spec.serial_fallback_override = 3;
    spec.watchdog_cycles = 500'000'000; // safety net: fail, not hang

    constexpr u32 kTx = 15;
    const auto r = runArrayBenchB(spec, kTx);
    EXPECT_EQ(r.stm.commits, 6u * kTx);
    EXPECT_EQ(r.stm.serial_commits, 6u * kTx)
        << "every commit should have escalated under a total storm";
    EXPECT_EQ(r.stm.escalations, 6u * kTx);
    EXPECT_GT(r.stm.injected_aborts, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FaultInjectionPerKind,
                         testing::ValuesIn(allKindParams()), kindName);

TEST(Watchdog, DetectsConstructedDeadlock)
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 << 20;
    Dpu dpu(cfg, TimingConfig{});
    dpu.addTasklet([](DpuContext &ctx) {
        ctx.acquire(0);
        ctx.compute(100);
        ctx.acquire(1);
        ctx.release(1);
        ctx.release(0);
    });
    dpu.addTasklet([](DpuContext &ctx) {
        ctx.acquire(1);
        ctx.compute(100);
        ctx.acquire(0);
        ctx.release(0);
        ctx.release(1);
    });
    try {
        dpu.run();
        FAIL() << "deadlock not detected";
    } catch (const WatchdogError &e) {
        EXPECT_EQ(e.kind(), WatchdogError::Kind::Deadlock);
        const std::string what = e.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
        EXPECT_NE(what.find("BlockedAtomic"), std::string::npos) << what;
    }
}

TEST(Watchdog, DetectsVrUpgradeLivelock)
{
    // Two tasklets running the identical read->write upgrade on one
    // cell under VR visible reads. With the randomized abort backoff
    // disabled, the deterministic simulator keeps them in perfect
    // lockstep: both read-lock, both fail the sole-reader upgrade,
    // both abort and retry — forever. The paper's §3.2.1 deadlock-
    // avoidance rule turns into a livelock, which only the watchdog
    // can diagnose.
    DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 << 20;
    dpu_cfg.watchdog_cycles = 300'000;
    Dpu dpu(dpu_cfg, TimingConfig{});

    StmConfig cfg;
    cfg.kind = StmKind::VrEtlWb;
    cfg.num_tasklets = 2;
    cfg.abort_backoff = false;
    cfg.data_words_hint = 16;
    auto stm = makeStm(dpu, cfg);

    SharedArray32 cells(dpu, Tier::Mram, 16);
    cells.fill(dpu, 0);

    dpu.addTasklets(2, [&](DpuContext &ctx) {
        atomically(*stm, ctx, [&](TxHandle &tx) {
            const u32 v = tx.read(cells.at(0));
            tx.write(cells.at(0), v + 1);
        });
    });
    try {
        dpu.run();
        FAIL() << "livelock not detected";
    } catch (const WatchdogError &e) {
        EXPECT_EQ(e.kind(), WatchdogError::Kind::Livelock);
        const std::string what = e.what();
        EXPECT_NE(what.find("livelock"), std::string::npos) << what;
        EXPECT_NE(what.find("upgrade-conflict"), std::string::npos)
            << "dump should show the abort-reason histogram:\n"
            << what;
    }
}

TEST(Watchdog, AbortStormWithoutFallbackIsDiagnosedAsLivelock)
{
    runtime::RunSpec spec;
    spec.kind = StmKind::NOrec;
    spec.tasklets = 4;
    spec.mram_bytes = 4 * 1024 * 1024;
    spec.faults = FaultPlan::parse("abort=1000");
    spec.watchdog_cycles = 1'000'000;

    try {
        (void)runArrayBenchB(spec, 10);
        FAIL() << "livelock not detected";
    } catch (const WatchdogError &e) {
        EXPECT_EQ(e.kind(), WatchdogError::Kind::Livelock);
        EXPECT_NE(std::string(e.what()).find("validation-fail"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Watchdog, ArmedWatchdogStaysSilentOnHealthyRuns)
{
    runtime::RunSpec spec;
    spec.kind = StmKind::VrEtlWb;
    spec.tasklets = 8;
    spec.mram_bytes = 4 * 1024 * 1024;
    spec.watchdog_cycles = 100'000'000;
    const auto r = runArrayBenchB(spec, 40);
    EXPECT_EQ(r.stm.commits, 8u * 40u);
}
