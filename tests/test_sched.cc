/**
 * @file
 * Event-driven scheduler tests: fiber-switch elision must leave every
 * simulated statistic bitwise identical to the always-switch schedule
 * (checked across all seven STM variants on ArrayBench, LinkedList and
 * a barrier-heavy KMeans config), and the incremental runnable /
 * finished / blocked counters must track every suspend / wake /
 * barrier / finish transition exactly.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/stm_factory.hh"
#include "runtime/driver.hh"
#include "sim/dpu.hh"
#include "workloads/arraybench.hh"
#include "workloads/kmeans.hh"
#include "workloads/linkedlist.hh"

using namespace pimstm;

namespace
{

/**
 * Equality over the *simulated* DpuStats fields. The host-side
 * scheduler counters (sched_switches / sched_elisions) are excluded on
 * purpose: an elided and an always-switch run differ there by
 * construction while agreeing on all simulated time and traffic.
 */
void
expectSameSimulatedStats(const sim::DpuStats &a, const sim::DpuStats &b)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    for (size_t p = 0; p < sim::kNumPhases; ++p)
        EXPECT_EQ(a.phase_cycles[p], b.phase_cycles[p]) << "phase " << p;
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.wram_accesses, b.wram_accesses);
    EXPECT_EQ(a.mram_reads, b.mram_reads);
    EXPECT_EQ(a.mram_writes, b.mram_writes);
    EXPECT_EQ(a.mram_bytes_read, b.mram_bytes_read);
    EXPECT_EQ(a.mram_bytes_written, b.mram_bytes_written);
    EXPECT_EQ(a.atomic_acquires, b.atomic_acquires);
    EXPECT_EQ(a.atomic_stalls, b.atomic_stalls);
    EXPECT_EQ(a.atomic_stall_cycles, b.atomic_stall_cycles);
}

void
expectSameStmStats(const core::StmStats &a, const core::StmStats &b)
{
    EXPECT_EQ(a.starts, b.starts);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.aborts, b.aborts);
    for (size_t r = 0; r < core::kNumAbortReasons; ++r)
        EXPECT_EQ(a.abort_reasons[r], b.abort_reasons[r]) << "reason " << r;
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.validations, b.validations);
    EXPECT_EQ(a.extensions, b.extensions);
    EXPECT_EQ(a.read_only_commits, b.read_only_commits);
}

/** Run @p factory's workload under both scheduling modes and require
 * bitwise-identical simulated results. */
void
checkElidedVsAlwaysSwitch(const runtime::WorkloadFactory &factory,
                          core::StmKind kind, unsigned tasklets)
{
    runtime::RunSpec spec;
    spec.kind = kind;
    spec.tier = core::MetadataTier::Mram;
    spec.tasklets = tasklets;
    spec.seed = 42;
    spec.mram_bytes = 4 * 1024 * 1024;

    auto wl_elided = factory();
    spec.sim_always_switch = false;
    const auto elided = runtime::runWorkload(*wl_elided, spec);

    auto wl_switch = factory();
    spec.sim_always_switch = true;
    const auto switched = runtime::runWorkload(*wl_switch, spec);

    expectSameSimulatedStats(elided.dpu, switched.dpu);
    expectSameStmStats(elided.stm, switched.stm);
    EXPECT_EQ(elided.seconds, switched.seconds);
    EXPECT_EQ(elided.throughput, switched.throughput);
    EXPECT_EQ(elided.abort_rate, switched.abort_rate);

    // The modes must actually differ as schedules: switching always,
    // the scheduler performs at least one fiber entry per elision the
    // fast mode absorbed.
    EXPECT_EQ(switched.dpu.sched_elisions, 0u);
    EXPECT_GE(switched.dpu.sched_switches, elided.dpu.sched_switches);
}

runtime::WorkloadFactory
arrayBenchFactory()
{
    return [] {
        return std::make_unique<workloads::ArrayBench>(
            workloads::ArrayBenchParams::workloadA(4));
    };
}

runtime::WorkloadFactory
linkedListFactory()
{
    return [] {
        return std::make_unique<workloads::LinkedList>(
            workloads::LinkedListParams::lowContention(16));
    };
}

/** Barrier-heavy config: every KMeans round rendezvouses twice. */
runtime::WorkloadFactory
kmeansFactory()
{
    return [] {
        return std::make_unique<workloads::KMeans>(
            workloads::KMeansParams::highContention(8));
    };
}

struct NamedFactory
{
    const char *name;
    runtime::WorkloadFactory (*make)();
    unsigned tasklets;
};

} // namespace

// ---------------------------------------------------------------------
// Elision equivalence across the whole STM taxonomy
// ---------------------------------------------------------------------

class SchedElision : public ::testing::TestWithParam<core::StmKind>
{};

TEST_P(SchedElision, BitwiseEqualAcrossWorkloads)
{
    const NamedFactory factories[] = {
        {"ArrayBench", &arrayBenchFactory, 6},
        {"LinkedList", &linkedListFactory, 6},
        {"KMeans", &kmeansFactory, 8},
    };
    for (const auto &f : factories) {
        SCOPED_TRACE(f.name);
        checkElidedVsAlwaysSwitch(f.make(), GetParam(), f.tasklets);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStmKinds, SchedElision,
    ::testing::ValuesIn(core::allStmKinds()),
    [](const ::testing::TestParamInfo<core::StmKind> &info) {
        // Kind names contain spaces ("Tiny ETLWB"); gtest names may not.
        std::string name;
        for (char c : std::string(core::stmKindName(info.param)))
            if (std::isalnum(static_cast<unsigned char>(c)))
                name += c;
        return name;
    });

// ---------------------------------------------------------------------
// Elision mechanics on a bare Dpu
// ---------------------------------------------------------------------

namespace
{

sim::Dpu
makeDpu(bool always_switch = false)
{
    sim::DpuConfig cfg;
    cfg.mram_bytes = 1 << 20;
    cfg.always_switch = always_switch;
    return sim::Dpu(cfg, sim::TimingConfig{});
}

} // namespace

TEST(SchedElisionUnit, LoneTaskletNeverSwitchesAfterEntry)
{
    sim::DpuConfig cfg;
    cfg.mram_bytes = 1 << 20;
    sim::Dpu dpu(cfg, sim::TimingConfig{});
    dpu.addTasklet([](sim::DpuContext &ctx) {
        for (int i = 0; i < 100; ++i)
            ctx.compute(1);
    });
    dpu.run();
    EXPECT_EQ(dpu.stats().sched_switches, 1u);
    EXPECT_EQ(dpu.stats().sched_elisions, 100u);
}

TEST(SchedElisionUnit, AlwaysSwitchConfigPaysOneSwitchPerCharge)
{
    sim::DpuConfig cfg;
    cfg.mram_bytes = 1 << 20;
    cfg.always_switch = true;
    sim::Dpu dpu(cfg, sim::TimingConfig{});
    dpu.addTasklet([](sim::DpuContext &ctx) {
        for (int i = 0; i < 100; ++i)
            ctx.compute(1);
    });
    dpu.run();
    EXPECT_TRUE(dpu.alwaysSwitch());
    EXPECT_EQ(dpu.stats().sched_elisions, 0u);
    EXPECT_EQ(dpu.stats().sched_switches, 101u);
}

TEST(SchedElisionUnit, EnvVarForcesAlwaysSwitch)
{
    ::setenv("PIMSTM_SIM_ALWAYS_SWITCH", "1", 1);
    {
        sim::DpuConfig cfg;
        cfg.mram_bytes = 1 << 20;
        sim::Dpu dpu(cfg, sim::TimingConfig{});
        EXPECT_TRUE(dpu.alwaysSwitch());
    }
    ::setenv("PIMSTM_SIM_ALWAYS_SWITCH", "0", 1);
    {
        sim::DpuConfig cfg;
        cfg.mram_bytes = 1 << 20;
        sim::Dpu dpu(cfg, sim::TimingConfig{});
        EXPECT_FALSE(dpu.alwaysSwitch());
    }
    ::unsetenv("PIMSTM_SIM_ALWAYS_SWITCH");
}

TEST(SchedElisionUnit, MixedScheduleIdenticalAcrossModes)
{
    // Fibers, atomics, barriers, WRAM and MRAM traffic with rng-varied
    // costs: the elided and always-switch schedules must agree on all
    // simulated statistics.
    auto body = [](sim::DpuContext &ctx) {
        for (int i = 0; i < 25; ++i) {
            ctx.compute(1 + ctx.rng().below(12));
            const sim::Addr m = sim::makeAddr(
                sim::Tier::Mram,
                static_cast<u32>(8 * ctx.rng().below(128)));
            ctx.write64(m, ctx.read64(m) + 1);
            ctx.acquire(5);
            const sim::Addr w = sim::makeAddr(
                sim::Tier::Wram,
                static_cast<u32>(4 * ctx.rng().below(32)));
            ctx.write32(w, ctx.read32(w) + 1);
            ctx.release(5);
            if (i % 6 == 0)
                ctx.barrier();
            if (i % 9 == 0)
                ctx.yield();
        }
    };

    auto runWith = [&](bool always_switch) {
        auto dpu = makeDpu(always_switch);
        dpu.addTasklets(8, body);
        dpu.run();
        return dpu.stats();
    };
    const auto elided = runWith(false);
    const auto switched = runWith(true);
    expectSameSimulatedStats(elided, switched);
    EXPECT_GT(elided.sched_elisions, 0u);
    EXPECT_EQ(switched.sched_elisions, 0u);
}

// ---------------------------------------------------------------------
// Incremental runnable / finished counters
// ---------------------------------------------------------------------

TEST(SchedCounters, TrackAtomicBlockAndWake)
{
    auto dpu = makeDpu();
    std::vector<unsigned> runnable_while_holding;
    // Tasklet 0 wins the bit (lowest id runs first from equal clocks),
    // computes far ahead while 1 and 2 block on it, then observes the
    // counters and releases.
    dpu.addTasklets(3, [&](sim::DpuContext &ctx) {
        ctx.acquire(7);
        if (ctx.taskletId() == 0) {
            ctx.compute(500); // let the others reach the held bit
            runnable_while_holding.push_back(ctx.dpu().runnableCount());
        }
        ctx.release(7);
        ctx.compute(10);
    });
    dpu.run();
    ASSERT_EQ(runnable_while_holding.size(), 1u);
    // Only tasklet 0 is Ready: 1 and 2 are BlockedAtomic.
    EXPECT_EQ(runnable_while_holding[0], 1u);
    // 1 and 2 stall on the held bit; after the release both retry and
    // the loser (2) stalls once more before 1 releases in turn.
    EXPECT_EQ(dpu.stats().atomic_stalls, 3u);
    EXPECT_EQ(dpu.runnableCount(), 0u);
    EXPECT_EQ(dpu.finishedCount(), 3u);
}

TEST(SchedCounters, TrackBarrierArrivals)
{
    auto dpu = makeDpu();
    std::vector<unsigned> runnable_at_arrival(4, 0);
    // Arrival order is by simulated completion time: tasklet i computes
    // (i+1)*50 instructions, so i arrives i-th and sees 4-i tasklets
    // still runnable (itself included; earlier arrivers are blocked).
    dpu.addTasklets(4, [&](sim::DpuContext &ctx) {
        ctx.compute((ctx.taskletId() + 1) * 50);
        runnable_at_arrival[ctx.taskletId()] =
            ctx.dpu().runnableCount();
        ctx.barrier();
        ctx.compute(5);
    });
    dpu.run();
    EXPECT_EQ(runnable_at_arrival, (std::vector<unsigned>{4, 3, 2, 1}));
    EXPECT_EQ(dpu.finishedCount(), 4u);
    EXPECT_EQ(dpu.runnableCount(), 0u);
}

TEST(SchedCounters, FinishersReleaseTheBarrier)
{
    // Two tasklets finish without ever reaching the barrier; the other
    // two wait at it. The finishing tasklets must release the barrier
    // via the finished-count bookkeeping (alive = total - finished).
    auto dpu = makeDpu();
    std::vector<unsigned> finished_after_barrier;
    dpu.addTasklets(4, [&](sim::DpuContext &ctx) {
        if (ctx.taskletId() < 2) {
            ctx.compute(10);
            return; // finish early
        }
        ctx.compute(2000); // arrive after both finishers are done
        ctx.barrier();
        finished_after_barrier.push_back(ctx.dpu().finishedCount());
    });
    dpu.run();
    ASSERT_EQ(finished_after_barrier.size(), 2u);
    // The last arriver releases the barrier and keeps running, so it
    // records first (2 finished); by the time the woken waiter records,
    // the releaser has itself finished (3).
    EXPECT_EQ(finished_after_barrier[0], 2u);
    EXPECT_EQ(finished_after_barrier[1], 3u);
    EXPECT_EQ(dpu.finishedCount(), 4u);
}

TEST(SchedCounters, RunnableCountPricesThePipeline)
{
    // instrCost uses the incrementally-maintained runnable count: with
    // 16 ready tasklets one instruction costs 16 cycles, and after 15
    // of them finish a lone tasklet pays the reissue interval (11).
    auto dpu = makeDpu();
    std::vector<u64> costs;
    dpu.addTasklets(16, [&](sim::DpuContext &ctx) {
        const auto t0 = ctx.now();
        ctx.compute(1);
        if (ctx.taskletId() == 0)
            costs.push_back(ctx.now() - t0);
        if (ctx.taskletId() == 0) {
            ctx.compute(3000); // outlive the others
            const auto t1 = ctx.now();
            ctx.compute(1);
            costs.push_back(ctx.now() - t1);
        }
    });
    dpu.run();
    ASSERT_EQ(costs.size(), 2u);
    EXPECT_EQ(costs[0], 16u); // 16 runnable > reissue interval 11
    EXPECT_EQ(costs[1], 11u); // lone tasklet: max(11, 1)
}

TEST(SchedCounters, ResetRunClearsSchedulerState)
{
    auto dpu = makeDpu();
    dpu.addTasklets(2, [](sim::DpuContext &ctx) { ctx.compute(10); });
    dpu.run();
    EXPECT_EQ(dpu.finishedCount(), 2u);
    dpu.resetRun();
    EXPECT_EQ(dpu.finishedCount(), 0u);
    EXPECT_EQ(dpu.runnableCount(), 0u);
    dpu.addTasklet([](sim::DpuContext &ctx) { ctx.compute(1); });
    EXPECT_EQ(dpu.runnableCount(), 1u);
    dpu.run();
    EXPECT_EQ(dpu.finishedCount(), 1u);
}

TEST(SchedCounters, TouchRandomWramChargesPerEightBytes)
{
    // touchRandom must price WRAM accesses like touchRead/touchWrite:
    // wram_access_instrs per started 8-byte word, per access.
    auto dpu = makeDpu();
    u64 cost_4b = 0, cost_24b = 0;
    dpu.addTasklet([&](sim::DpuContext &ctx) {
        auto t0 = ctx.now();
        ctx.touchRandom(sim::Tier::Wram, 10, 4, false);
        cost_4b = ctx.now() - t0;
        t0 = ctx.now();
        ctx.touchRandom(sim::Tier::Wram, 10, 24, true);
        cost_24b = ctx.now() - t0;
    });
    dpu.run();
    // 10 accesses x 1 instr x ceil(4/8 = 1 word) x 11 cycles.
    EXPECT_EQ(cost_4b, 10u * 1u * 11u);
    // 10 accesses x 1 instr x ceil(24/8 = 3 words) x 11 cycles.
    EXPECT_EQ(cost_24b, 10u * 3u * 11u);
    EXPECT_EQ(dpu.stats().wram_accesses, 20u);
}
