/**
 * @file
 * Tests for the host-side (real-threads) NOrec STM and the CPU
 * baseline workloads used by the §4.3 study.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "cpu/kmeans_cpu.hh"
#include "cpu/labyrinth_cpu.hh"
#include "cpu/norec_cpu.hh"
#include "util/rng.hh"

using namespace pimstm;
using namespace pimstm::cpu;

TEST(CpuNOrecTest, SingleThreadReadWrite)
{
    CpuNOrec stm;
    CpuTx tx;
    u32 a = 5, b = 7;
    cpuAtomically(stm, tx, [&](CpuTx &t) {
        const u32 va = stm.read(t, &a);
        stm.write(t, &b, va + 1);
    });
    EXPECT_EQ(b, 6u);
    EXPECT_EQ(tx.commits, 1u);
    EXPECT_EQ(stm.seqlock(), 2u);
}

TEST(CpuNOrecTest, ReadYourOwnWrites)
{
    CpuNOrec stm;
    CpuTx tx;
    u32 a = 1;
    u32 seen = 0;
    cpuAtomically(stm, tx, [&](CpuTx &t) {
        stm.write(t, &a, 10);
        seen = stm.read(t, &a);
        stm.write(t, &a, 20);
    });
    EXPECT_EQ(seen, 10u);
    EXPECT_EQ(a, 20u);
}

TEST(CpuNOrecTest, ReadOnlyCommitLeavesSeqlock)
{
    CpuNOrec stm;
    CpuTx tx;
    u32 a = 1;
    cpuAtomically(stm, tx, [&](CpuTx &t) { stm.read(t, &a); });
    EXPECT_EQ(stm.seqlock(), 0u);
}

TEST(CpuNOrecTest, CountersAtomicUnderRealThreads)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kIncs = 5000;
    CpuNOrec stm;
    u32 counter = 0;

    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
            CpuTx tx;
            for (unsigned j = 0; j < kIncs; ++j) {
                cpuAtomically(stm, tx, [&](CpuTx &t) {
                    stm.write(t, &counter, stm.read(t, &counter) + 1);
                });
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter, kThreads * kIncs);
}

TEST(CpuNOrecTest, BankInvariantUnderRealThreads)
{
    constexpr unsigned kThreads = 6;
    constexpr unsigned kOps = 4000;
    constexpr unsigned kAccounts = 32;
    CpuNOrec stm;
    std::vector<u32> accounts(kAccounts, 100);

    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            Rng rng(deriveSeed(77, i));
            CpuTx tx;
            for (unsigned j = 0; j < kOps; ++j) {
                const u32 from =
                    static_cast<u32>(rng.below(kAccounts));
                u32 to = static_cast<u32>(rng.below(kAccounts));
                if (to == from)
                    to = (to + 1) % kAccounts;
                cpuAtomically(stm, tx, [&](CpuTx &t) {
                    const u32 f = stm.read(t, &accounts[from]);
                    const u32 v = stm.read(t, &accounts[to]);
                    stm.write(t, &accounts[from], f - 1);
                    stm.write(t, &accounts[to], v + 1);
                });
            }
        });
    }
    for (auto &t : threads)
        t.join();

    u64 total = 0;
    for (u32 v : accounts)
        total += v;
    EXPECT_EQ(total, kAccounts * 100u);
}

TEST(KMeansCpuTest, FoldsEveryPointEveryRound)
{
    KMeansCpuParams p;
    p.clusters = 4;
    p.total_points = 4000;
    p.rounds = 2;
    p.threads = 4;
    const auto r = runKMeansCpu(p);
    // commits = one tx per point per round (plus none spurious)
    EXPECT_EQ(r.commits,
              static_cast<u64>(p.total_points) * p.rounds);
    EXPECT_GT(r.seconds, 0.0);
    ASSERT_EQ(r.centroids.size(), static_cast<size_t>(p.clusters) * p.dims);
    for (float c : r.centroids)
        EXPECT_TRUE(std::isfinite(c));
}

TEST(KMeansCpuTest, ScalesLinearlyInPoints)
{
    // The Fig. 7 harness extrapolates CPU time linearly in the point
    // count; verify the assumption within loose bounds.
    KMeansCpuParams p;
    p.clusters = 8;
    p.threads = 4;
    p.total_points = 20000;
    const double t1 = runKMeansCpu(p).seconds;
    p.total_points = 80000;
    const double t4 = runKMeansCpu(p).seconds;
    EXPECT_GT(t4 / t1, 2.0);
    EXPECT_LT(t4 / t1, 8.0);
}

TEST(LabyrinthCpuTest, RoutesAndConservesJobs)
{
    LabyrinthCpuParams p;
    p.num_paths = 40;
    p.threads = 8;
    const auto r = runLabyrinthCpu(p);
    EXPECT_EQ(r.routed + r.failed, 40u);
    EXPECT_GT(r.routed, 20u);
    EXPECT_GT(r.seconds, 0.0);
}

TEST(LabyrinthCpuTest, LargerGridsCostMore)
{
    LabyrinthCpuParams s;
    s.num_paths = 24;
    s.threads = 4;
    const auto rs = runLabyrinthCpu(s);

    LabyrinthCpuParams l = s;
    l.x = 128;
    l.y = 128;
    const auto rl = runLabyrinthCpu(l);
    EXPECT_GT(rl.seconds, rs.seconds);
}
