/**
 * @file
 * Unit and property tests for the 32-bit rw-lock word (Fig. 3 layout):
 * mode encoding, reader bitmap/count consistency, upgrade
 * preconditions, and add/remove round trips for all 24 tasklet ids.
 */

#include <gtest/gtest.h>

#include "core/rw_lock.hh"

using namespace pimstm;
using namespace pimstm::core::rwlock;

TEST(RwLock, FreeWordIsZero)
{
    EXPECT_TRUE(isFree(Free));
    EXPECT_FALSE(isRead(Free));
    EXPECT_FALSE(isWrite(Free));
    EXPECT_EQ(static_cast<u32>(Free), 0u);
}

TEST(RwLock, WriteModeEncodesOwner)
{
    for (u32 owner : {0u, 1u, 13u, 23u, 1000u}) {
        const u32 w = makeWrite(owner);
        EXPECT_TRUE(isWrite(w));
        EXPECT_FALSE(isRead(w));
        EXPECT_FALSE(isFree(w));
        EXPECT_EQ(writeOwner(w), owner);
    }
}

TEST(RwLock, AddReaderSetsBitAndCount)
{
    u32 w = Free;
    w = addReader(w, 5);
    EXPECT_TRUE(isRead(w));
    EXPECT_TRUE(hasReader(w, 5));
    EXPECT_FALSE(hasReader(w, 6));
    EXPECT_EQ(readerCount(w), 1u);

    w = addReader(w, 20);
    EXPECT_EQ(readerCount(w), 2u);
    EXPECT_TRUE(hasReader(w, 5));
    EXPECT_TRUE(hasReader(w, 20));
}

TEST(RwLock, RemoveReaderRoundTrip)
{
    u32 w = addReader(addReader(Free, 3), 7);
    w = removeReader(w, 3);
    EXPECT_TRUE(isRead(w));
    EXPECT_FALSE(hasReader(w, 3));
    EXPECT_TRUE(hasReader(w, 7));
    EXPECT_EQ(readerCount(w), 1u);
    w = removeReader(w, 7);
    EXPECT_TRUE(isFree(w));
}

TEST(RwLock, SoleReaderPredicate)
{
    u32 w = addReader(Free, 9);
    EXPECT_TRUE(soleReader(w, 9));
    EXPECT_FALSE(soleReader(w, 8));
    w = addReader(w, 10);
    EXPECT_FALSE(soleReader(w, 9));
    EXPECT_FALSE(soleReader(w, 10));
    EXPECT_FALSE(soleReader(makeWrite(9), 9));
}

TEST(RwLock, All24ReadersFit)
{
    u32 w = Free;
    for (unsigned t = 0; t < 24; ++t)
        w = addReader(w, t);
    EXPECT_EQ(readerCount(w), 24u);
    for (unsigned t = 0; t < 24; ++t)
        EXPECT_TRUE(hasReader(w, t));
    // Tear them all down again.
    for (unsigned t = 0; t < 24; ++t)
        w = removeReader(w, t);
    EXPECT_TRUE(isFree(w));
}

TEST(RwLock, ReaderBitmapIsolatedFromMode)
{
    // Adding/removing any reader must never corrupt the mode bits.
    for (unsigned t = 0; t < 24; ++t) {
        const u32 w = addReader(Free, t);
        EXPECT_EQ(mode(w), static_cast<u32>(Read));
        EXPECT_EQ(readerBitmap(w), 1u << t);
    }
}

TEST(RwLock, Tasklet24Rejected)
{
    EXPECT_THROW(addReader(Free, 24), PanicError);
}

TEST(RwLock, MisuseIsLoud)
{
    EXPECT_THROW(addReader(makeWrite(1), 2), PanicError);
    EXPECT_THROW(removeReader(Free, 1), PanicError);
    EXPECT_THROW(removeReader(makeWrite(1), 1), PanicError);
}

class RwLockBitmapProperty : public testing::TestWithParam<u32>
{
};

TEST_P(RwLockBitmapProperty, MakeReadCountMatchesPopcount)
{
    const u32 bitmap = GetParam();
    const u32 w = makeRead(bitmap);
    EXPECT_TRUE(isRead(w));
    EXPECT_EQ(readerBitmap(w), bitmap);
    EXPECT_EQ(readerCount(w),
              static_cast<u32>(__builtin_popcount(bitmap)));
}

INSTANTIATE_TEST_SUITE_P(Bitmaps, RwLockBitmapProperty,
                         testing::Values(0x1u, 0x3u, 0x800000u, 0xffffffu,
                                         0x555555u, 0xaaaaaau, 0x10101u));
