/**
 * @file
 * Tests for the host-coordinated two-phase-commit path of the
 * distributed KV: routing (fiber-free TwoPcPlan suite), mixed batches,
 * the same-shard degrade, pin-conflict resolution via the serial
 * token, coordinator crash/recovery at both protocol phases, and the
 * serialized baseline's equivalence.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hostapp/distributed_kv.hh"

using namespace pimstm;
using namespace pimstm::hostapp;
using pimstm::runtime::TxHashMap;

namespace
{

DistributedKvConfig
smallCfg(unsigned shards = 4)
{
    DistributedKvConfig cfg;
    cfg.shards = shards;
    cfg.capacity_per_shard = 256;
    cfg.tasklets_per_dpu = 4;
    cfg.mram_bytes = 1 * 1024 * 1024;
    return cfg;
}

/** A key on shard @p s of an @p shards-way store, from @p from up. */
u32
keyOnShard(unsigned s, unsigned shards, u32 from = 1)
{
    for (u32 k = from;; ++k)
        if (TxHashMap::validKey(k) && shardOfKey(k, shards) == s)
            return k;
}

/** A key on a different shard than @p key. */
u32
keyOffShard(u32 key, unsigned shards, u32 from = 1)
{
    for (u32 k = from;; ++k)
        if (TxHashMap::validKey(k) && k != key &&
            shardOfKey(k, shards) != shardOfKey(key, shards))
            return k;
}

} // namespace

//
// TwoPcPlan: host-pure routing and stats plumbing (no DPU fibers, so
// this suite also runs under TSan).
//

TEST(TwoPcPlan, ShardOfKeyIsStableAndBalanced)
{
    const unsigned shards = 256;
    std::vector<u32> counts(shards, 0);
    for (u32 k = 1; k <= 64 * shards; ++k) {
        const unsigned s = shardOfKey(k, shards);
        ASSERT_LT(s, shards);
        EXPECT_EQ(s, shardOfKey(k, shards));
        ++counts[s];
    }
    for (u32 c : counts) {
        EXPECT_GT(c, 16u);
        EXPECT_LT(c, 256u);
    }
}

TEST(TwoPcPlan, RoutesCrossLocalAndDegenerate)
{
    const unsigned shards = 8;
    const u32 a = keyOnShard(0, shards);
    const u32 a2 = keyOnShard(0, shards, a + 1);
    const u32 b = keyOnShard(3, shards);

    const TxPlan cross = planCrossShardTx(CrossShardTx::move(a, b), shards);
    EXPECT_EQ(cross.route, TxRoute::Cross);
    EXPECT_EQ(cross.src_shard, 0u);
    EXPECT_EQ(cross.dst_shard, 3u);

    const TxPlan local =
        planCrossShardTx(CrossShardTx::move(a, a2), shards);
    EXPECT_EQ(local.route, TxRoute::Local);
    EXPECT_EQ(local.src_shard, local.dst_shard);

    const TxPlan degen =
        planCrossShardTx(CrossShardTx::move(a, a), shards);
    EXPECT_EQ(degen.route, TxRoute::Degenerate);
}

TEST(TwoPcPlan, StatsJsonCarriesEveryField)
{
    TwoPcStats s;
    s.batches = 1;
    s.prepare_rounds = 2;
    s.commit_rounds = 3;
    s.tx_commits = 4;
    s.bytes_down = 5;
    s.bytes_up = 6;
    s.shard_busy_seconds = 1.0;
    s.shard_capacity_seconds = 4.0;
    const std::string j = twoPcStatsJson(s);
    for (const char *field :
         {"batches", "prepare_rounds", "commit_rounds", "tx_commits",
          "tx_predicate_fails", "tx_conflict_retries", "serial_fallbacks",
          "deferred_ops", "participant_redeliveries", "crashes_in_prepare",
          "crashes_in_commit", "bytes_down", "bytes_up",
          "mean_shard_occupancy"})
        EXPECT_NE(j.find(field), std::string::npos) << field;
    EXPECT_DOUBLE_EQ(s.meanShardOccupancy(), 0.25);
    EXPECT_DOUBLE_EQ(TwoPcStats{}.meanShardOccupancy(), 0.0);
}

TEST(TwoPcPlan, TotalsAccumulateDeltas)
{
    const TwoPcStats before = twoPcTotals();
    TwoPcStats d;
    d.tx_commits = 7;
    d.bytes_down = 11;
    accumulateTwoPcTotals(d);
    const TwoPcStats after = twoPcTotals();
    EXPECT_EQ(after.tx_commits, before.tx_commits + 7);
    EXPECT_EQ(after.bytes_down, before.bytes_down + 11);
}

//
// CrossShardTx: the 2PC engine proper.
//

TEST(CrossShardTxTest, MixedBatchRunsOpsAndMovesTogether)
{
    const unsigned shards = 8;
    auto kv = std::make_unique<DistributedKv>(smallCfg(shards));
    const u32 src = keyOnShard(1, shards);
    const u32 dst = keyOnShard(5, shards);
    kv->execute({KvOp::put(src, 4242), KvOp::put(777, 1)});

    const auto r = kv->execute(
        {KvOp::get(777), KvOp::put(778, 2), KvOp::erase(777)},
        {CrossShardTx::move(src, dst)});
    ASSERT_EQ(r.ops.size(), 3u);
    ASSERT_EQ(r.txs.size(), 1u);
    EXPECT_TRUE(r.txs[0].committed);
    EXPECT_EQ(r.txs[0].value, 4242u);
    EXPECT_GE(r.txs[0].attempts, 1u);

    u32 v = 0;
    EXPECT_FALSE(kv->peek(src, v));
    ASSERT_TRUE(kv->peek(dst, v));
    EXPECT_EQ(v, 4242u);
    EXPECT_EQ(kv->livePins(), 0u);
    EXPECT_GE(kv->stats().prepare_rounds, 1u);
    EXPECT_GE(kv->stats().commit_rounds, 1u);
    EXPECT_EQ(kv->stats().tx_commits, 1u);
    EXPECT_GT(kv->stats().bytes_down, 0u);
    EXPECT_GT(kv->stats().bytes_up, 0u);
}

TEST(CrossShardTxTest, SameShardMoveDegradesToLocalTransaction)
{
    const unsigned shards = 8;
    auto kv = std::make_unique<DistributedKv>(smallCfg(shards));
    const u32 src = keyOnShard(2, shards);
    const u32 dst = keyOnShard(2, shards, src + 1);
    kv->execute({KvOp::put(src, 99)});

    const auto before = kv->stats();
    const auto r = kv->execute({}, {CrossShardTx::move(src, dst)});
    EXPECT_TRUE(r.txs[0].committed);
    EXPECT_EQ(r.txs[0].value, 99u);

    // A same-shard movek is one shard-local transaction: no prepare
    // fragments, no votes, no decision launch — never a degenerate 2PC.
    EXPECT_EQ(kv->stats().commit_rounds, before.commit_rounds);
    EXPECT_EQ(kv->stats().prepare_rounds, before.prepare_rounds + 1);
    EXPECT_EQ(kv->stats().tx_commits, before.tx_commits + 1);
    EXPECT_EQ(kv->livePins(), 0u);

    u32 v = 0;
    EXPECT_FALSE(kv->peek(src, v));
    ASSERT_TRUE(kv->peek(dst, v));
    EXPECT_EQ(v, 99u);

    // Predicate failures degrade identically.
    kv->execute({KvOp::put(src, 1)});
    const auto r2 = kv->execute({}, {CrossShardTx::move(src, dst)});
    EXPECT_FALSE(r2.txs[0].committed); // dst occupied
    EXPECT_EQ(kv->population(), 2u);
}

TEST(CrossShardTxTest, SameSourceContendersResolveUnderSerialToken)
{
    const unsigned shards = 8;
    DistributedKvConfig cfg = smallCfg(shards);
    cfg.serial_token_after = 1; // first conflict takes the token
    auto kv = std::make_unique<DistributedKv>(cfg);

    const u32 src = keyOnShard(0, shards);
    const u32 d1 = keyOnShard(3, shards);
    const u32 d2 = keyOnShard(5, shards);
    const u32 d3 = keyOnShard(7, shards);
    kv->execute({KvOp::put(src, 321)});

    // Three transactions fight over one source pin; exactly one can
    // commit, the others must fail its predicate after it moves.
    const auto r =
        kv->execute({}, {CrossShardTx::move(src, d1),
                         CrossShardTx::move(src, d2),
                         CrossShardTx::move(src, d3)});
    unsigned committed = 0;
    for (const auto &t : r.txs)
        committed += t.committed ? 1 : 0;
    EXPECT_EQ(committed, 1u);
    EXPECT_EQ(kv->population(), 1u);
    EXPECT_EQ(kv->livePins(), 0u);
    EXPECT_GE(kv->stats().tx_conflict_retries, 1u);

    u32 v = 0;
    unsigned present = 0;
    for (u32 k : {d1, d2, d3})
        if (kv->peek(k, v)) {
            ++present;
            EXPECT_EQ(v, 321u);
        }
    EXPECT_EQ(present, 1u);
    EXPECT_FALSE(kv->peek(src, v));
}

TEST(CrossShardTxTest, MutualMoveCycleTerminatesWithBothRefused)
{
    const unsigned shards = 8;
    DistributedKvConfig cfg = smallCfg(shards);
    cfg.serial_token_after = 1;
    auto kv = std::make_unique<DistributedKv>(cfg);

    const u32 k1 = keyOnShard(1, shards);
    const u32 k2 = keyOnShard(6, shards);
    kv->execute({KvOp::put(k1, 11), KvOp::put(k2, 22)});

    // A: k1 -> k2 and B: k2 -> k1. No serial order can commit either
    // (each destination is the other's occupied source), so the only
    // correct outcome is both refused — and the coordinator must not
    // livelock on the crosswise pin conflicts getting there.
    const auto r = kv->execute({}, {CrossShardTx::move(k1, k2),
                                    CrossShardTx::move(k2, k1)});
    EXPECT_FALSE(r.txs[0].committed);
    EXPECT_FALSE(r.txs[1].committed);
    EXPECT_EQ(kv->livePins(), 0u);

    u32 v = 0;
    ASSERT_TRUE(kv->peek(k1, v));
    EXPECT_EQ(v, 11u);
    ASSERT_TRUE(kv->peek(k2, v));
    EXPECT_EQ(v, 22u);
}

TEST(CrossShardTxTest, ChainedMovesCommitInSomeSerialOrder)
{
    const unsigned shards = 8;
    auto kv = std::make_unique<DistributedKv>(smallCfg(shards));
    const u32 a = keyOnShard(0, shards);
    const u32 b = keyOffShard(a, shards);
    const u32 c = keyOffShard(b, shards, b + 1);
    kv->execute({KvOp::put(a, 1), KvOp::put(b, 2)});

    // A: a -> b (dst occupied unless B commits first), B: b -> c.
    // Serializable outcomes: {B then A: both commit} or {A refused,
    // B commits}. Either way b's old value ends at c.
    const auto r = kv->execute(
        {}, {CrossShardTx::move(a, b), CrossShardTx::move(b, c)});
    EXPECT_TRUE(r.txs[1].committed);
    u32 v = 0;
    ASSERT_TRUE(kv->peek(c, v));
    EXPECT_EQ(v, 2u);
    if (r.txs[0].committed) {
        EXPECT_FALSE(kv->peek(a, v));
        ASSERT_TRUE(kv->peek(b, v));
        EXPECT_EQ(v, 1u);
    } else {
        ASSERT_TRUE(kv->peek(a, v));
        EXPECT_EQ(v, 1u);
        EXPECT_FALSE(kv->peek(b, v));
    }
    EXPECT_EQ(kv->population(), 2u);
    EXPECT_EQ(kv->livePins(), 0u);
}

TEST(CrossShardTxTest, SerializedBaselineMatchesMoveKeySemantics)
{
    const unsigned shards = 8;
    auto kv = std::make_unique<DistributedKv>(smallCfg(shards));
    const u32 src = keyOnShard(4, shards);
    const u32 dst = keyOffShard(src, shards);
    kv->execute({KvOp::put(src, 5), KvOp::put(1000, 6)});

    EXPECT_FALSE(kv->moveKeySerialized(src, src));
    EXPECT_FALSE(kv->moveKeySerialized(12345, dst)); // absent source
    EXPECT_FALSE(kv->moveKeySerialized(src, 1000));  // occupied dest
    EXPECT_TRUE(kv->moveKeySerialized(src, dst));
    u32 v = 0;
    EXPECT_FALSE(kv->peek(src, v));
    ASSERT_TRUE(kv->peek(dst, v));
    EXPECT_EQ(v, 5u);
    EXPECT_EQ(kv->population(), 2u);
}

TEST(CrossShardTxTest, DeferredOpsOrderAfterInFlightMove)
{
    const unsigned shards = 4;
    DistributedKvConfig cfg = smallCfg(shards);
    cfg.tasklets_per_dpu = 8;
    auto kv = std::make_unique<DistributedKv>(cfg);
    const u32 src = keyOnShard(0, shards);
    const u32 dst = keyOffShard(src, shards);
    kv->execute({KvOp::put(src, 7)});

    // Ops on both endpoints share the launch with the move's prepare
    // fragments. Whatever the interleaving, the batch result must be
    // consistent with the final state and no op may observe the
    // reservation placeholder.
    std::vector<KvOp> ops;
    for (int i = 0; i < 6; ++i) {
        ops.push_back(KvOp::get(src));
        ops.push_back(KvOp::get(dst));
    }
    const auto r = kv->execute(ops, {CrossShardTx::move(src, dst)});
    EXPECT_TRUE(r.txs[0].committed);
    for (size_t i = 0; i < ops.size(); ++i) {
        const auto &res = r.ops[i];
        if (ops[i].key == src) {
            // Present (pre-move) or absent (post-move); never garbage.
            if (res.ok) {
                EXPECT_EQ(res.value, 7u);
            }
        } else if (res.ok) {
            EXPECT_EQ(res.value, 7u); // post-move value, never 0
        }
    }
    EXPECT_EQ(kv->population(), 1u);
    EXPECT_EQ(kv->livePins(), 0u);
}

//
// Coordinator crash / recovery, across every STM kind.
//

TEST(CrossShardTxTest, CoordinatorCrashAfterPrepareRecoversByAbort)
{
    const unsigned shards = 8;
    for (core::StmKind kind : core::allStmKindsExtended()) {
        DistributedKvConfig cfg = smallCfg(shards);
        cfg.kind = kind;
        auto kv = std::make_unique<DistributedKv>(cfg);
        const u32 src = keyOnShard(1, shards);
        const u32 dst = keyOnShard(5, shards);
        kv->execute({KvOp::put(src, 1234)});

        kv->injectCoordinatorCrash(DistributedKv::CrashPoint::AfterPrepare);
        EXPECT_THROW(kv->execute({}, {CrossShardTx::move(src, dst)}),
                     DistributedKv::CoordinatorCrashed);
        EXPECT_TRUE(kv->needsRecovery());
        EXPECT_THROW(kv->execute({KvOp::get(src)}), FatalError);
        EXPECT_GT(kv->livePins(), 0u); // prepare pinned, nothing decided

        // No decision was logged: recovery presumes abort. The store
        // must look as if the movek never happened.
        kv->recover();
        EXPECT_FALSE(kv->needsRecovery());
        EXPECT_EQ(kv->livePins(), 0u);
        u32 v = 0;
        ASSERT_TRUE(kv->peek(src, v)) << core::stmKindName(kind);
        EXPECT_EQ(v, 1234u);
        EXPECT_FALSE(kv->peek(dst, v));
        EXPECT_EQ(kv->population(), 1u);

        // And the store still works — including the same move.
        EXPECT_TRUE(kv->moveKey(src, dst));
        ASSERT_TRUE(kv->peek(dst, v));
        EXPECT_EQ(v, 1234u);
    }
}

TEST(CrossShardTxTest, CoordinatorCrashMidDecisionRedeliversIdempotently)
{
    const unsigned shards = 8;
    for (core::StmKind kind : core::allStmKindsExtended()) {
        for (unsigned delivered : {0u, 1u}) {
            DistributedKvConfig cfg = smallCfg(shards);
            cfg.kind = kind;
            auto kv = std::make_unique<DistributedKv>(cfg);
            const u32 src = keyOnShard(2, shards);
            const u32 dst = keyOnShard(6, shards);
            kv->execute({KvOp::put(src, 55)});

            // Crash after the commit decision reached `delivered` of
            // the two involved shards.
            kv->injectCoordinatorCrash(
                DistributedKv::CrashPoint::MidDecision, delivered);
            EXPECT_THROW(kv->execute({}, {CrossShardTx::move(src, dst)}),
                         DistributedKv::CoordinatorCrashed);
            EXPECT_TRUE(kv->needsRecovery());

            // The decision was logged commit: recovery re-delivers to
            // the shards that missed it. All-or-nothing across shards.
            kv->recover();
            EXPECT_EQ(kv->livePins(), 0u);
            u32 v = 0;
            EXPECT_FALSE(kv->peek(src, v)) << core::stmKindName(kind);
            ASSERT_TRUE(kv->peek(dst, v)) << core::stmKindName(kind);
            EXPECT_EQ(v, 55u);
            EXPECT_EQ(kv->population(), 1u);
            if (delivered == 1) {
                EXPECT_GE(kv->stats().participant_redeliveries +
                              kv->stats().commit_rounds,
                          2u);
            }
        }
    }
}

TEST(CrossShardTxTest, RecoverWithoutCrashIsANoOp)
{
    auto kv = std::make_unique<DistributedKv>(smallCfg());
    kv->execute({KvOp::put(1, 2)});
    kv->recover();
    EXPECT_FALSE(kv->needsRecovery());
    u32 v = 0;
    ASSERT_TRUE(kv->peek(1, v));
    EXPECT_EQ(v, 2u);
}

TEST(CrossShardTxTest, PinTablesAreRecycledAcrossManyBatches)
{
    // Many sequential moveks through one shard pair: without pin-table
    // recycling the tombstones would eventually overflow the STM
    // read-set budget on absent-key probes.
    const unsigned shards = 4;
    DistributedKvConfig cfg = smallCfg(shards);
    cfg.max_inflight_per_shard = 4; // tiny pin tables
    auto kv = std::make_unique<DistributedKv>(cfg);

    u32 key = keyOnShard(0, shards);
    kv->execute({KvOp::put(key, 9000)});
    for (int i = 0; i < 64; ++i) {
        const u32 next = (i % 2 == 0) ? keyOffShard(key, shards)
                                      : keyOnShard(0, shards);
        ASSERT_TRUE(kv->moveKey(key, next)) << "iteration " << i;
        key = next;
    }
    u32 v = 0;
    ASSERT_TRUE(kv->peek(key, v));
    EXPECT_EQ(v, 9000u);
    EXPECT_EQ(kv->population(), 1u);
    EXPECT_EQ(kv->livePins(), 0u);
}
