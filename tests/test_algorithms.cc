/**
 * @file
 * Algorithm-specific unit tests: the internal behaviours that
 * differentiate NOrec, Tiny and VR — sequence-lock motion, ORec
 * version clocks and snapshot extension, write-through undo, visible-
 * reader tracking, upgrade aborts and abort-reason attribution.
 */

#include <gtest/gtest.h>

#include "core/norec.hh"
#include "core/rw_lock.hh"
#include "core/tiny.hh"
#include "core/vr.hh"
#include "runtime/shared_array.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;
using pimstm::runtime::SharedArray32;

namespace
{

DpuConfig
smallDpu(u64 seed = 5)
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    cfg.seed = seed;
    return cfg;
}

StmConfig
cfgFor(StmKind kind, unsigned tasklets)
{
    StmConfig cfg;
    cfg.kind = kind;
    cfg.num_tasklets = tasklets;
    cfg.max_read_set = 64;
    cfg.max_write_set = 32;
    cfg.data_words_hint = 256;
    return cfg;
}

u64
reason(const StmStats &s, AbortReason r)
{
    return s.abort_reasons[static_cast<size_t>(r)];
}

} // namespace

//
// NOrec
//

TEST(NOrecTest, SeqlockAdvancesByTwoPerUpdateCommit)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    NOrecStm stm(dpu, cfgFor(StmKind::NOrec, 1));
    SharedArray32 arr(dpu, Tier::Mram, 4);

    dpu.addTasklet([&](DpuContext &ctx) {
        for (int i = 0; i < 5; ++i) {
            atomically(stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(0), static_cast<u32>(i));
            });
        }
    });
    dpu.run();
    EXPECT_EQ(stm.seqlock(), 10u);
}

TEST(NOrecTest, ReadOnlyCommitDoesNotTouchSeqlock)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    NOrecStm stm(dpu, cfgFor(StmKind::NOrec, 1));
    SharedArray32 arr(dpu, Tier::Mram, 4);

    dpu.addTasklet([&](DpuContext &ctx) {
        for (int i = 0; i < 5; ++i) {
            atomically(stm, ctx, [&](TxHandle &tx) {
                tx.read(arr.at(0));
            });
        }
    });
    dpu.run();
    EXPECT_EQ(stm.seqlock(), 0u);
    EXPECT_EQ(stm.stats().read_only_commits, 5u);
}

TEST(NOrecTest, ConflictingWriterTriggersValueValidation)
{
    // Two tasklets increment the same word; the loser of the commit
    // race must revalidate and, with changed values, abort.
    Dpu dpu(smallDpu(), TimingConfig{});
    NOrecStm stm(dpu, cfgFor(StmKind::NOrec, 2));
    SharedArray32 arr(dpu, Tier::Mram, 1);
    arr.fill(dpu, 0);

    dpu.addTasklets(2, [&](DpuContext &ctx) {
        for (int i = 0; i < 30; ++i) {
            atomically(stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(0), tx.read(arr.at(0)) + 1);
            });
        }
    });
    dpu.run();
    EXPECT_EQ(arr.peek(dpu, 0), 60u);
    EXPECT_GT(stm.stats().validations, 0u);
    EXPECT_GT(reason(stm.stats(), AbortReason::ValidationFail), 0u);
}

TEST(NOrecTest, SilentStoreSurvivesValidation)
{
    // Value-based validation: a concurrent commit that writes the SAME
    // value back must NOT abort the reader (the classic NOrec
    // advantage over version-based validation).
    Dpu dpu(smallDpu(), TimingConfig{});
    NOrecStm stm(dpu, cfgFor(StmKind::NOrec, 2));
    SharedArray32 arr(dpu, Tier::Mram, 4);
    arr.fill(dpu, 7);

    bool reader_aborted = false;
    dpu.addTasklet([&](DpuContext &ctx) { // silent writer
        for (int i = 0; i < 10; ++i) {
            atomically(stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(0), 7); // same value
            });
        }
    });
    dpu.addTasklet([&](DpuContext &ctx) { // long reader
        atomically(stm, ctx, [&](TxHandle &tx) {
            for (int r = 0; r < 30; ++r) {
                tx.read(arr.at(static_cast<size_t>(r) % 4));
                ctx.compute(200);
            }
        });
        reader_aborted = stm.stats().aborts > 0;
    });
    dpu.run();
    EXPECT_FALSE(reader_aborted);
}

//
// Tiny
//

TEST(TinyTest, ClockAdvancesPerUpdateCommit)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    TinyStm stm(dpu, cfgFor(StmKind::TinyEtlWb, 1));
    SharedArray32 arr(dpu, Tier::Mram, 4);

    dpu.addTasklet([&](DpuContext &ctx) {
        for (int i = 0; i < 4; ++i) {
            atomically(stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(0), static_cast<u32>(i));
            });
        }
        atomically(stm, ctx,
                   [&](TxHandle &tx) { tx.read(arr.at(0)); });
    });
    dpu.run();
    EXPECT_EQ(stm.clock(), 4u); // read-only commit does not bump
}

TEST(TinyTest, CommittedOrecCarriesCommitTimestamp)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    TinyStm stm(dpu, cfgFor(StmKind::TinyEtlWb, 1));
    SharedArray32 arr(dpu, Tier::Mram, 4);

    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(stm, ctx, [&](TxHandle &tx) {
            tx.write(arr.at(2), 99);
        });
    });
    dpu.run();
    // After the run every ORec must be unlocked; the one covering
    // arr[2] must hold version 1.
    bool saw_v1 = false;
    for (u32 i = 0; i < stm.lockTableEntries(); ++i) {
        EXPECT_FALSE(stm.orecLocked(i));
        if (stm.orecVersion(i) == 1)
            saw_v1 = true;
    }
    EXPECT_TRUE(saw_v1);
}

TEST(TinyTest, AbortLeavesVersionUntouched)
{
    // An aborting writer must release its ORec with the OLD version so
    // concurrent readers stay consistent.
    Dpu dpu(smallDpu(), TimingConfig{});
    TinyStm stm(dpu, cfgFor(StmKind::TinyEtlWt, 1));
    SharedArray32 arr(dpu, Tier::Mram, 4);
    arr.fill(dpu, 5);

    int attempts = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(stm, ctx, [&](TxHandle &tx) {
            ++attempts;
            tx.write(arr.at(1), 50);
            if (attempts == 1)
                tx.retry();
        });
    });
    dpu.run();
    EXPECT_EQ(arr.peek(dpu, 1), 50u);
    // One commit happened -> max version is 1, and nothing is locked.
    for (u32 i = 0; i < stm.lockTableEntries(); ++i) {
        EXPECT_FALSE(stm.orecLocked(i));
        EXPECT_LE(stm.orecVersion(i), 1u);
    }
}

TEST(TinyTest, WriteThroughUndoRestoresExactBytes)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    TinyStm stm(dpu, cfgFor(StmKind::TinyEtlWt, 1));
    SharedArray32 arr(dpu, Tier::Mram, 4);
    arr.poke(dpu, 0, 0xdeadbeef);
    arr.poke(dpu, 1, 0x12345678);

    int attempts = 0;
    u32 mid_value = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(stm, ctx, [&](TxHandle &tx) {
            ++attempts;
            if (attempts == 1) {
                tx.write(arr.at(0), 1);
                tx.write(arr.at(1), 2);
                tx.write(arr.at(0), 3); // double write, undo once
                tx.retry();
            }
            mid_value = tx.read(arr.at(0));
        });
    });
    dpu.run();
    EXPECT_EQ(mid_value, 0xdeadbeefu);
    EXPECT_EQ(arr.peek(dpu, 0), 0xdeadbeefu);
    EXPECT_EQ(arr.peek(dpu, 1), 0x12345678u);
}

TEST(TinyTest, SnapshotExtensionSparesAborts)
{
    // A reader that sees a version newer than its snapshot extends
    // (validating its read set) instead of aborting, when its reads
    // are untouched — Tiny's core advantage over TL2.
    Dpu dpu(smallDpu(), TimingConfig{});
    TinyStm stm(dpu, cfgFor(StmKind::TinyEtlWb, 2));
    SharedArray32 arr(dpu, Tier::Mram, 16);
    arr.fill(dpu, 0);

    // The reader snapshots at clock 0 and reads words 0..7; while it
    // computes, the writer commits to words 8..15 (clock -> 1); the
    // reader then reads word 8, whose version exceeds its snapshot.
    // Its read set (0..7) is untouched, so the extension must succeed
    // and no abort may happen.
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(stm, ctx, [&](TxHandle &tx) {
            for (u32 i = 0; i < 8; ++i)
                tx.read(arr.at(i));
            ctx.compute(50000); // writer commits in this window
            tx.read(arr.at(8));
        });
    });
    dpu.addTasklet([&](DpuContext &ctx) {
        ctx.delay(5000);
        atomically(stm, ctx, [&](TxHandle &tx) {
            for (u32 i = 8; i < 16; ++i)
                tx.write(arr.at(i), 1);
        });
    });
    dpu.run();
    EXPECT_EQ(stm.stats().aborts, 0u);
    EXPECT_GT(stm.stats().extensions, 0u);
}

TEST(TinyTest, CtlDefersLocksUntilCommit)
{
    // With CTL, a second tasklet can read a location another tx has
    // pending-written, because no lock is taken until commit.
    Dpu dpu(smallDpu(), TimingConfig{});
    TinyStm stm(dpu, cfgFor(StmKind::TinyCtlWb, 2));
    SharedArray32 arr(dpu, Tier::Mram, 8);
    arr.fill(dpu, 3);

    u32 observed = 0;
    Cycles writer_hold_until = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(stm, ctx, [&](TxHandle &tx) {
            tx.write(arr.at(0), 77);
            ctx.compute(5000); // hold the pending write a while
            writer_hold_until = ctx.now();
        });
    });
    dpu.addTasklet([&](DpuContext &ctx) {
        ctx.delay(2000); // inside the writer's pending window
        atomically(stm, ctx, [&](TxHandle &tx) {
            observed = tx.read(arr.at(0));
        });
        panicIf(ctx.now() > writer_hold_until && writer_hold_until != 0,
                "reader ran after the writer finished");
    });
    dpu.run();
    // The read committed before the writer; it must see the old value.
    EXPECT_EQ(observed, 3u);
}

//
// VR
//

TEST(VrTest, LockTableEndsFree)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    VrStm stm(dpu, cfgFor(StmKind::VrEtlWb, 4));
    SharedArray32 arr(dpu, Tier::Mram, 32);
    arr.fill(dpu, 0);

    dpu.addTasklets(4, [&](DpuContext &ctx) {
        for (int i = 0; i < 20; ++i) {
            const u32 idx = static_cast<u32>(ctx.rng().below(32));
            atomically(stm, ctx, [&](TxHandle &tx) {
                tx.write(arr.at(idx), tx.read(arr.at(idx)) + 1);
            });
        }
    });
    dpu.run();
    for (u32 i = 0; i < stm.lockTableEntries(); ++i)
        EXPECT_EQ(stm.lockWord(i), rwlock::Free);
}

TEST(VrTest, UpgradeConflictAbortsAndIsAttributed)
{
    // Two tasklets read the same word then try to write it: at least
    // one upgrade must fail with UpgradeConflict (the paper's VR
    // spurious-abort mechanism).
    Dpu dpu(smallDpu(), TimingConfig{});
    VrStm stm(dpu, cfgFor(StmKind::VrEtlWb, 2));
    SharedArray32 arr(dpu, Tier::Mram, 1);
    arr.fill(dpu, 0);

    dpu.addTasklets(2, [&](DpuContext &ctx) {
        for (int i = 0; i < 25; ++i) {
            atomically(stm, ctx, [&](TxHandle &tx) {
                const u32 v = tx.read(arr.at(0));
                ctx.compute(300); // widen the read->write window
                tx.write(arr.at(0), v + 1);
            });
        }
    });
    dpu.run();
    EXPECT_EQ(arr.peek(dpu, 0), 50u);
    EXPECT_GT(reason(stm.stats(), AbortReason::UpgradeConflict), 0u);
    // Visible reads never validate.
    EXPECT_EQ(stm.stats().validations, 0u);
}

TEST(VrTest, ReadersDoNotConflictWithReaders)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    VrStm stm(dpu, cfgFor(StmKind::VrEtlWb, 8));
    SharedArray32 arr(dpu, Tier::Mram, 4);
    arr.fill(dpu, 9);

    dpu.addTasklets(8, [&](DpuContext &ctx) {
        for (int i = 0; i < 20; ++i) {
            atomically(stm, ctx, [&](TxHandle &tx) {
                for (u32 w = 0; w < 4; ++w)
                    tx.read(arr.at(w));
            });
        }
    });
    dpu.run();
    EXPECT_EQ(stm.stats().aborts, 0u);
    EXPECT_EQ(stm.stats().commits, 160u);
}

TEST(VrTest, WriterBlocksReadersUntilCommit)
{
    // ETL: while a writer holds a write lock, a reader of the same
    // word aborts with ReadConflict (visible conflict, no validation).
    Dpu dpu(smallDpu(), TimingConfig{});
    VrStm stm(dpu, cfgFor(StmKind::VrEtlWt, 2));
    SharedArray32 arr(dpu, Tier::Mram, 1);
    arr.fill(dpu, 0);

    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(stm, ctx, [&](TxHandle &tx) {
            tx.write(arr.at(0), 1);
            ctx.compute(4000); // hold the write lock
        });
    });
    dpu.addTasklet([&](DpuContext &ctx) {
        ctx.delay(2000);
        atomically(stm, ctx, [&](TxHandle &tx) {
            tx.read(arr.at(0));
        });
    });
    dpu.run();
    EXPECT_GT(reason(stm.stats(), AbortReason::ReadConflict), 0u);
}

TEST(VrTest, CtlUpgradesAtCommit)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    VrStm stm(dpu, cfgFor(StmKind::VrCtlWb, 1));
    SharedArray32 arr(dpu, Tier::Mram, 4);
    arr.fill(dpu, 10);

    dpu.addTasklet([&](DpuContext &ctx) {
        atomically(stm, ctx, [&](TxHandle &tx) {
            const u32 v = tx.read(arr.at(0)); // read lock
            tx.write(arr.at(0), v + 5);       // buffered, no lock yet
        });
    });
    dpu.run();
    EXPECT_EQ(arr.peek(dpu, 0), 15u);
    EXPECT_EQ(stm.stats().aborts, 0u);
    EXPECT_EQ(stm.lockWord(0) & 3u, 0u);
}

//
// Cross-algorithm: name dispatch.
//

TEST(AlgorithmNames, MatchKinds)
{
    Dpu dpu(smallDpu(), TimingConfig{});
    {
        TinyStm s(dpu, cfgFor(StmKind::TinyEtlWb, 1));
        EXPECT_STREQ(s.name(), "Tiny ETLWB");
        EXPECT_TRUE(s.encounterTimeLocking());
        EXPECT_TRUE(s.writeBack());
    }
    dpu.resetRun();
    {
        Dpu d2(smallDpu(), TimingConfig{});
        TinyStm s(d2, cfgFor(StmKind::TinyCtlWb, 1));
        EXPECT_STREQ(s.name(), "Tiny CTLWB");
        EXPECT_FALSE(s.encounterTimeLocking());
    }
    {
        Dpu d3(smallDpu(), TimingConfig{});
        VrStm s(d3, cfgFor(StmKind::VrEtlWt, 1));
        EXPECT_STREQ(s.name(), "VR ETLWT");
        EXPECT_FALSE(s.writeBack());
    }
}
