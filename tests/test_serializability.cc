/**
 * @file
 * A serializability checker, run against every STM implementation
 * (including the TL2 extension).
 *
 * Protocol: every transaction picks a few cells, reads each cell's
 * counter and writes counter+1, recording the values it observed on
 * its committed attempt. In any serializable execution:
 *
 *  1. per cell, the observed values are exactly {0, 1, ..., k-1} with
 *     no duplicates (each increment saw a distinct predecessor), and
 *  2. the precedence relation induced by observations — tx A precedes
 *     tx B whenever they touched a common cell and A observed the
 *     smaller value — must be ACYCLIC (a cycle means no serial order
 *     can explain the observations).
 *
 * The checker builds the precedence graph over all committed
 * transactions and runs a DFS cycle detection. Any lost update,
 * dirty read or write skew the STMs could exhibit would show up as a
 * duplicate observation or a precedence cycle.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;
using pimstm::runtime::SharedArray32;

namespace
{

struct CommittedTx
{
    /** (cell, value observed just before our increment). */
    std::vector<std::pair<u32, u32>> observations;
};

/** Check property 1 and build per-cell observation orderings. */
void
checkPerCellHistories(const std::vector<CommittedTx> &txs, u32 cells)
{
    // cell -> observed value -> tx index
    std::vector<std::map<u32, size_t>> by_cell(cells);
    for (size_t t = 0; t < txs.size(); ++t) {
        for (const auto &[cell, value] : txs[t].observations) {
            const auto [it, fresh] = by_cell[cell].emplace(value, t);
            ASSERT_TRUE(fresh)
                << "cell " << cell << ": value " << value
                << " observed twice (lost update)";
        }
    }
    for (u32 c = 0; c < cells; ++c) {
        u32 expected = 0;
        for (const auto &[value, tx] : by_cell[c]) {
            ASSERT_EQ(value, expected)
                << "cell " << c << ": observation gap at " << expected;
            ++expected;
        }
    }
}

/** Check property 2: precedence graph acyclicity. */
void
checkAcyclicPrecedence(const std::vector<CommittedTx> &txs, u32 cells)
{
    // Edges: for each cell, tx observing value v precedes the tx
    // observing v+1 (transitively closed by chaining, so consecutive
    // edges suffice).
    std::vector<std::map<u32, size_t>> by_cell(cells);
    for (size_t t = 0; t < txs.size(); ++t)
        for (const auto &[cell, value] : txs[t].observations)
            by_cell[cell][value] = t;

    std::vector<std::vector<size_t>> succ(txs.size());
    for (u32 c = 0; c < cells; ++c) {
        size_t prev = SIZE_MAX;
        for (const auto &[value, tx] : by_cell[c]) {
            if (prev != SIZE_MAX && prev != tx)
                succ[prev].push_back(tx);
            prev = tx;
        }
    }

    // Iterative DFS cycle detection (colors: 0 white, 1 grey, 2 black).
    std::vector<u8> color(txs.size(), 0);
    for (size_t root = 0; root < txs.size(); ++root) {
        if (color[root] != 0)
            continue;
        std::vector<std::pair<size_t, size_t>> stack{{root, 0}};
        color[root] = 1;
        while (!stack.empty()) {
            auto &[node, child] = stack.back();
            if (child < succ[node].size()) {
                const size_t next = succ[node][child++];
                ASSERT_NE(color[next], 1)
                    << "precedence cycle: execution not serializable";
                if (color[next] == 0) {
                    color[next] = 1;
                    stack.emplace_back(next, 0);
                }
            } else {
                color[node] = 2;
                stack.pop_back();
            }
        }
    }
}

struct Param
{
    StmKind kind;
    MetadataTier tier;
};

std::string
paramName(const testing::TestParamInfo<Param> &info)
{
    std::string s = stmKindName(info.param.kind);
    s += info.param.tier == MetadataTier::Wram ? "_WRAM" : "_MRAM";
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

std::vector<Param>
allParams()
{
    std::vector<Param> ps;
    for (StmKind k : allStmKindsExtended()) {
        ps.push_back({k, MetadataTier::Mram});
        ps.push_back({k, MetadataTier::Wram});
    }
    return ps;
}

class Serializability : public testing::TestWithParam<Param>
{
};

/** The increment-history protocol, optionally under fault injection
 * (crash-free plans only: the history check needs every transaction to
 * eventually commit). */
void
runIncrementHistoryCheck(const Param &param, const FaultPlan &faults)
{
    constexpr u32 kCells = 12;
    constexpr unsigned kTasklets = 8;
    constexpr unsigned kOpsPerTasklet = 20;

    DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 * 1024 * 1024;
    dpu_cfg.seed = 2026;
    dpu_cfg.faults = faults;
    Dpu dpu(dpu_cfg, TimingConfig{});

    StmConfig cfg;
    cfg.kind = param.kind;
    cfg.metadata_tier = param.tier;
    cfg.num_tasklets = kTasklets;
    cfg.max_read_set = 32;
    cfg.max_write_set = 16;
    cfg.data_words_hint = kCells;
    auto stm = makeStm(dpu, cfg);

    SharedArray32 counters(dpu, Tier::Mram, kCells);
    counters.fill(dpu, 0);

    std::vector<std::vector<CommittedTx>> logs(kTasklets);
    dpu.addTasklets(kTasklets, [&](DpuContext &ctx) {
        const unsigned me = ctx.taskletId();
        for (unsigned op = 0; op < kOpsPerTasklet; ++op) {
            // 1-3 distinct cells per transaction.
            const unsigned n =
                static_cast<unsigned>(ctx.rng().range(1, 3));
            std::vector<u32> cells;
            while (cells.size() < n) {
                const u32 c = static_cast<u32>(ctx.rng().below(kCells));
                bool dup = false;
                for (u32 x : cells)
                    dup = dup || x == c;
                if (!dup)
                    cells.push_back(c);
            }
            CommittedTx record;
            atomically(*stm, ctx, [&](TxHandle &tx) {
                record.observations.clear();
                for (const u32 c : cells) {
                    const u32 v = tx.read(counters.at(c));
                    tx.write(counters.at(c), v + 1);
                    record.observations.emplace_back(c, v);
                }
            });
            // atomically() returned: `record` is the committed attempt.
            logs[me].push_back(record);
        }
    });
    dpu.run();

    std::vector<CommittedTx> txs;
    for (auto &l : logs)
        for (auto &r : l)
            txs.push_back(std::move(r));
    ASSERT_EQ(txs.size(), kTasklets * kOpsPerTasklet);

    checkPerCellHistories(txs, kCells);
    checkAcyclicPrecedence(txs, kCells);

    // Final counters must equal the number of increments per cell.
    std::vector<u32> expected(kCells, 0);
    for (const auto &t : txs)
        for (const auto &[cell, value] : t.observations)
            ++expected[cell];
    for (u32 c = 0; c < kCells; ++c)
        EXPECT_EQ(counters.peek(dpu, c), expected[c]) << "cell " << c;
}

} // namespace

TEST_P(Serializability, RandomIncrementHistoriesAreSerializable)
{
    runIncrementHistoryCheck(GetParam(), FaultPlan{});
}

TEST_P(Serializability, HistoriesStaySerializableUnderFaultInjection)
{
    // Stalls, probabilistic acquire delays and spurious aborts shuffle
    // the interleaving and force extra retries, but must never produce
    // a non-serializable committed history.
    runIncrementHistoryCheck(
        GetParam(),
        FaultPlan::parse("seed=5;stall=*@3000:500;stall=2@9000:1500;"
                         "acq-delay=60:250;abort=30"));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, Serializability,
                         testing::ValuesIn(allParams()), paramName);
