/**
 * @file
 * A serializability checker, run against every STM implementation
 * (including the TL2 extension).
 *
 * Protocol: every transaction picks a few cells, reads each cell's
 * counter and writes counter+1, recording the values it observed on
 * its committed attempt. In any serializable execution:
 *
 *  1. per cell, the observed values are exactly {0, 1, ..., k-1} with
 *     no duplicates (each increment saw a distinct predecessor), and
 *  2. the precedence relation induced by observations — tx A precedes
 *     tx B whenever they touched a common cell and A observed the
 *     smaller value — must be ACYCLIC (a cycle means no serial order
 *     can explain the observations).
 *
 * The checker builds the precedence graph over all committed
 * transactions and runs a DFS cycle detection. Any lost update,
 * dirty read or write skew the STMs could exhibit would show up as a
 * duplicate observation or a precedence cycle.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/stm_factory.hh"
#include "hostapp/distributed_kv.hh"
#include "runtime/shared_array.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;
using pimstm::runtime::SharedArray32;

namespace
{

struct CommittedTx
{
    /** (cell, value observed just before our increment). */
    std::vector<std::pair<u32, u32>> observations;
};

/** Check property 1 and build per-cell observation orderings. */
void
checkPerCellHistories(const std::vector<CommittedTx> &txs, u32 cells)
{
    // cell -> observed value -> tx index
    std::vector<std::map<u32, size_t>> by_cell(cells);
    for (size_t t = 0; t < txs.size(); ++t) {
        for (const auto &[cell, value] : txs[t].observations) {
            const auto [it, fresh] = by_cell[cell].emplace(value, t);
            ASSERT_TRUE(fresh)
                << "cell " << cell << ": value " << value
                << " observed twice (lost update)";
        }
    }
    for (u32 c = 0; c < cells; ++c) {
        u32 expected = 0;
        for (const auto &[value, tx] : by_cell[c]) {
            ASSERT_EQ(value, expected)
                << "cell " << c << ": observation gap at " << expected;
            ++expected;
        }
    }
}

/** Check property 2: precedence graph acyclicity. */
void
checkAcyclicPrecedence(const std::vector<CommittedTx> &txs, u32 cells)
{
    // Edges: for each cell, tx observing value v precedes the tx
    // observing v+1 (transitively closed by chaining, so consecutive
    // edges suffice).
    std::vector<std::map<u32, size_t>> by_cell(cells);
    for (size_t t = 0; t < txs.size(); ++t)
        for (const auto &[cell, value] : txs[t].observations)
            by_cell[cell][value] = t;

    std::vector<std::vector<size_t>> succ(txs.size());
    for (u32 c = 0; c < cells; ++c) {
        size_t prev = SIZE_MAX;
        for (const auto &[value, tx] : by_cell[c]) {
            if (prev != SIZE_MAX && prev != tx)
                succ[prev].push_back(tx);
            prev = tx;
        }
    }

    // Iterative DFS cycle detection (colors: 0 white, 1 grey, 2 black).
    std::vector<u8> color(txs.size(), 0);
    for (size_t root = 0; root < txs.size(); ++root) {
        if (color[root] != 0)
            continue;
        std::vector<std::pair<size_t, size_t>> stack{{root, 0}};
        color[root] = 1;
        while (!stack.empty()) {
            auto &[node, child] = stack.back();
            if (child < succ[node].size()) {
                const size_t next = succ[node][child++];
                ASSERT_NE(color[next], 1)
                    << "precedence cycle: execution not serializable";
                if (color[next] == 0) {
                    color[next] = 1;
                    stack.emplace_back(next, 0);
                }
            } else {
                color[node] = 2;
                stack.pop_back();
            }
        }
    }
}

struct Param
{
    StmKind kind;
    MetadataTier tier;
};

std::string
paramName(const testing::TestParamInfo<Param> &info)
{
    std::string s = stmKindName(info.param.kind);
    s += info.param.tier == MetadataTier::Wram ? "_WRAM" : "_MRAM";
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

std::vector<Param>
allParams()
{
    std::vector<Param> ps;
    for (StmKind k : allStmKindsExtended()) {
        ps.push_back({k, MetadataTier::Mram});
        ps.push_back({k, MetadataTier::Wram});
    }
    return ps;
}

class Serializability : public testing::TestWithParam<Param>
{
};

/** The increment-history protocol, optionally under fault injection
 * (crash-free plans only: the history check needs every transaction to
 * eventually commit). */
void
runIncrementHistoryCheck(const Param &param, const FaultPlan &faults)
{
    constexpr u32 kCells = 12;
    constexpr unsigned kTasklets = 8;
    constexpr unsigned kOpsPerTasklet = 20;

    DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 * 1024 * 1024;
    dpu_cfg.seed = 2026;
    dpu_cfg.faults = faults;
    Dpu dpu(dpu_cfg, TimingConfig{});

    StmConfig cfg;
    cfg.kind = param.kind;
    cfg.metadata_tier = param.tier;
    cfg.num_tasklets = kTasklets;
    cfg.max_read_set = 32;
    cfg.max_write_set = 16;
    cfg.data_words_hint = kCells;
    auto stm = makeStm(dpu, cfg);

    SharedArray32 counters(dpu, Tier::Mram, kCells);
    counters.fill(dpu, 0);

    std::vector<std::vector<CommittedTx>> logs(kTasklets);
    dpu.addTasklets(kTasklets, [&](DpuContext &ctx) {
        const unsigned me = ctx.taskletId();
        for (unsigned op = 0; op < kOpsPerTasklet; ++op) {
            // 1-3 distinct cells per transaction.
            const unsigned n =
                static_cast<unsigned>(ctx.rng().range(1, 3));
            std::vector<u32> cells;
            while (cells.size() < n) {
                const u32 c = static_cast<u32>(ctx.rng().below(kCells));
                bool dup = false;
                for (u32 x : cells)
                    dup = dup || x == c;
                if (!dup)
                    cells.push_back(c);
            }
            CommittedTx record;
            atomically(*stm, ctx, [&](TxHandle &tx) {
                record.observations.clear();
                for (const u32 c : cells) {
                    const u32 v = tx.read(counters.at(c));
                    tx.write(counters.at(c), v + 1);
                    record.observations.emplace_back(c, v);
                }
            });
            // atomically() returned: `record` is the committed attempt.
            logs[me].push_back(record);
        }
    });
    dpu.run();

    std::vector<CommittedTx> txs;
    for (auto &l : logs)
        for (auto &r : l)
            txs.push_back(std::move(r));
    ASSERT_EQ(txs.size(), kTasklets * kOpsPerTasklet);

    checkPerCellHistories(txs, kCells);
    checkAcyclicPrecedence(txs, kCells);

    // Final counters must equal the number of increments per cell.
    std::vector<u32> expected(kCells, 0);
    for (const auto &t : txs)
        for (const auto &[cell, value] : t.observations)
            ++expected[cell];
    for (u32 c = 0; c < kCells; ++c)
        EXPECT_EQ(counters.peek(dpu, c), expected[c]) << "cell " << c;
}

//
// Crash-stitched histories: the increment protocol under durable mode
// with injected whole-DPU crashes (docs/durability.md). The stitched
// history — every committed transaction across all crash-restart
// rounds — must still be serializable. One wrinkle: a crash can land
// between a transaction's durable commit point and the host-side
// record of its observations, so the recorded history may have GAPS
// (a committed increment nobody logged). Gaps weaken the per-cell
// completeness check (bounded by in-flight transactions at crash
// time) but never excuse a duplicate observation (lost update) or a
// precedence cycle.
//

/** POD committed-tx record: whole-DPU crashes abandon fiber stacks
 * without unwinding, so nothing heap-owning may live there. */
struct PodTx
{
    u32 cell[3];
    u32 value[3];
    u32 n;
};

void
runDurableCrashStitchedCheck(const Param &param, const std::string &spec)
{
    constexpr u32 kCells = 8;
    constexpr unsigned kTasklets = 6;
    constexpr unsigned kOpsPerTasklet = 12;
    constexpr unsigned kMaxCellsPerTx = 3;

    DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 * 1024 * 1024;
    dpu_cfg.seed = 2027;
    dpu_cfg.faults = FaultPlan::parse(spec);
    Dpu dpu(dpu_cfg, TimingConfig{});

    StmConfig cfg;
    cfg.kind = param.kind;
    cfg.metadata_tier = param.tier;
    cfg.num_tasklets = kTasklets;
    cfg.max_read_set = 32;
    cfg.max_write_set = 16;
    cfg.data_words_hint = kCells;
    cfg.durable = true;
    auto stm = makeStm(dpu, cfg);

    SharedArray32 counters(dpu, Tier::Mram, kCells);
    counters.fill(dpu, 0);
    dpu.mram().fence(); // host-loaded initial image is durable

    std::vector<std::vector<PodTx>> logs(kTasklets);
    const auto body = [&](DpuContext &ctx) {
        const unsigned me = ctx.taskletId();
        for (unsigned op = 0; op < kOpsPerTasklet; ++op) {
            const unsigned n =
                static_cast<unsigned>(ctx.rng().range(1, kMaxCellsPerTx));
            u32 cells[kMaxCellsPerTx];
            unsigned picked = 0;
            while (picked < n) {
                const u32 c = static_cast<u32>(ctx.rng().below(kCells));
                bool dup = false;
                for (unsigned i = 0; i < picked; ++i)
                    dup = dup || cells[i] == c;
                if (!dup)
                    cells[picked++] = c;
            }
            PodTx rec;
            atomically(*stm, ctx, [&](TxHandle &tx) {
                rec.n = 0;
                for (unsigned i = 0; i < n; ++i) {
                    const u32 v = tx.read(counters.at(cells[i]));
                    tx.write(counters.at(cells[i]), v + 1);
                    rec.cell[rec.n] = cells[i];
                    rec.value[rec.n] = v;
                    ++rec.n;
                }
            });
            // Committed. (A crash landing before this line loses the
            // record but not the increment: that is the gap budget.)
            logs[me].push_back(rec);
        }
    };

    dpu.addTasklets(kTasklets, body);
    unsigned crashes = 0;
    for (;;) {
        try {
            dpu.run();
            break;
        } catch (const DpuCrashError &) {
            ++crashes;
            ASSERT_LT(crashes, 64u) << "crash-restart loop not converging";
            dpu.resetRun(/*reset_faults=*/false);
            (void)stm->recoverAfterCrash();
            dpu.addTasklets(kTasklets, body);
        }
    }
    ASSERT_GT(crashes, 0u) << "plan '" << spec << "' never fired";

    std::vector<CommittedTx> txs;
    for (const auto &l : logs)
        for (const auto &r : l) {
            CommittedTx t;
            for (u32 i = 0; i < r.n; ++i)
                t.observations.emplace_back(r.cell[i], r.value[i]);
            txs.push_back(std::move(t));
        }

    // Property 1 (crash-stitched form): per cell, no value observed
    // twice, every observed value below the final counter, and the
    // total number of unobserved committed increments bounded by the
    // in-flight transactions the crashes could have cut off.
    std::vector<std::map<u32, size_t>> by_cell(kCells);
    for (size_t t = 0; t < txs.size(); ++t) {
        for (const auto &[cell, value] : txs[t].observations) {
            const auto [it, fresh] = by_cell[cell].emplace(value, t);
            ASSERT_TRUE(fresh)
                << "cell " << cell << ": value " << value
                << " observed twice (lost update across crash)";
        }
    }
    u64 missing = 0;
    for (u32 c = 0; c < kCells; ++c) {
        const u32 fin = counters.peek(dpu, c);
        for (const auto &[value, tx] : by_cell[c])
            ASSERT_LT(value, fin) << "cell " << c
                                  << ": observation beyond final state";
        ASSERT_GE(fin, by_cell[c].size());
        missing += fin - static_cast<u32>(by_cell[c].size());
    }
    EXPECT_LE(missing, static_cast<u64>(crashes) * kTasklets *
                           kMaxCellsPerTx)
        << "more unobserved increments than crashes can explain";

    // Property 2 unchanged: the recorded suborder must stay acyclic.
    checkAcyclicPrecedence(txs, kCells);
}

//
// Multi-shard histories: the 2PC layer on top of the STMs. Tokens
// (unique values) are seeded once and then relocated by random
// cross-shard transactions; after every batch, the set of committed
// transactions must admit SOME serial order in which each one's
// predicates hold and the value it reports is the value its source
// held at that point. The final store must equal the reference model
// after that order is applied — token conservation plus atomicity of
// every movek across shards, under all eight STM kinds.
//

/** Can all committed moves be applied to @p ref in some serial order?
 * DFS with backtracking (batches are small); applies in place and
 * returns true when an order exists. */
bool
applyInSomeSerialOrder(std::map<u32, u32> &ref,
                       std::vector<std::pair<hostapp::CrossShardTx, u32>> moves)
{
    if (moves.empty())
        return true;
    for (size_t i = 0; i < moves.size(); ++i) {
        const auto &[tx, value] = moves[i];
        const auto src = ref.find(tx.src_key);
        if (src == ref.end() || src->second != value ||
            ref.count(tx.dst_key))
            continue;
        std::map<u32, u32> next = ref;
        next.erase(tx.src_key);
        next.emplace(tx.dst_key, value);
        std::vector<std::pair<hostapp::CrossShardTx, u32>> rest;
        for (size_t j = 0; j < moves.size(); ++j)
            if (j != i)
                rest.push_back(moves[j]);
        if (applyInSomeSerialOrder(next, std::move(rest))) {
            ref = std::move(next);
            return true;
        }
    }
    return false;
}

/** Random mixed batches against one DistributedKv; returns its final
 * 2PC stats so crash sweeps can check phase coverage. */
hostapp::TwoPcStats
runDistributedMoveCheck(const Param &param, const FaultPlan &faults)
{
    constexpr unsigned kShards = 4;
    constexpr u32 kTokens = 24;
    constexpr u32 kKeySpace = 48; ///< moveks roam twice the seeded range

    hostapp::DistributedKvConfig cfg;
    cfg.shards = kShards;
    cfg.capacity_per_shard = 256;
    cfg.kind = param.kind;
    cfg.tier = param.tier;
    cfg.tasklets_per_dpu = 4;
    cfg.mram_bytes = 1 * 1024 * 1024;
    cfg.faults = faults;
    auto kv = std::make_unique<hostapp::DistributedKv>(cfg);

    std::map<u32, u32> ref;
    std::vector<hostapp::KvOp> seed;
    for (u32 k = 1; k <= kTokens; ++k) {
        seed.push_back(hostapp::KvOp::put(k, 1000 + k));
        ref[k] = 1000 + k;
    }
    kv->execute(seed);

    Rng rng(31 * static_cast<u64>(param.kind) +
            (param.tier == MetadataTier::Wram ? 7 : 0));
    for (int batch = 0; batch < 2; ++batch) {
        std::vector<hostapp::CrossShardTx> txs;
        for (int i = 0; i < 10; ++i) {
            const u32 s = static_cast<u32>(rng.below(kKeySpace)) + 1;
            const u32 d = static_cast<u32>(rng.below(kKeySpace)) + 1;
            txs.push_back(hostapp::CrossShardTx::move(s, d));
        }
        // Single-shard noise on a disjoint key range, same launches.
        std::vector<hostapp::KvOp> ops;
        for (u32 i = 0; i < 4; ++i)
            ops.push_back(hostapp::KvOp::put(100 + batch * 8 + i, i));

        const auto r = kv->execute(ops, txs);

        for (u32 i = 0; i < 4; ++i) {
            EXPECT_TRUE(r.ops[i].ok);
            ref[100 + batch * 8 + i] = i;
        }
        std::vector<std::pair<hostapp::CrossShardTx, u32>> committed;
        for (size_t i = 0; i < txs.size(); ++i)
            if (r.txs[i].committed)
                committed.emplace_back(txs[i], r.txs[i].value);
        EXPECT_TRUE(applyInSomeSerialOrder(ref, std::move(committed)))
            << "committed moves admit no serial order (batch " << batch
            << ")";
    }

    EXPECT_EQ(kv->livePins(), 0u);
    EXPECT_EQ(kv->population(), ref.size());
    for (const auto &[key, value] : ref) {
        u32 v = 0;
        EXPECT_TRUE(kv->peek(key, v)) << "key " << key;
        EXPECT_EQ(v, value) << "key " << key;
    }
    return kv->stats();
}

} // namespace

TEST_P(Serializability, RandomIncrementHistoriesAreSerializable)
{
    runIncrementHistoryCheck(GetParam(), FaultPlan{});
}

TEST_P(Serializability, HistoriesStaySerializableUnderFaultInjection)
{
    // Stalls, probabilistic acquire delays and spurious aborts shuffle
    // the interleaving and force extra retries, but must never produce
    // a non-serializable committed history.
    runIncrementHistoryCheck(
        GetParam(),
        FaultPlan::parse("seed=5;stall=*@3000:500;stall=2@9000:1500;"
                         "acq-delay=60:250;abort=30"));
}

TEST_P(Serializability, CrashStitchedHistoriesStaySerializable)
{
    // Durable mode + whole-DPU crashes: recovery stitches the flushed
    // prefix into the restarted run; the combined committed history
    // must still be serializable. Two plans: a mid-run crash and a
    // double crash with a different scramble seed.
    runDurableCrashStitchedCheck(GetParam(), "dpu-crash=90");
    runDurableCrashStitchedCheck(GetParam(),
                                 "dpu-crash=60;dpu-crash=200;seed=9");
}

TEST_P(Serializability, MultiShardMoveHistoriesAreSerializable)
{
    runDistributedMoveCheck(GetParam(), FaultPlan{});
}

TEST_P(Serializability, MultiShardHistoriesSurviveParticipantCrashes)
{
    // Sweep the crash point across the per-tasklet operation stream so
    // injected participant crashes land in prepare rounds for some
    // offsets and in decision rounds for others. Every run must keep
    // the token-conservation / serial-order invariants; across the
    // sweep both protocol phases must actually have been hit.
    u64 in_prepare = 0;
    u64 in_commit = 0;
    for (u32 n = 20; n <= 420 && (in_prepare == 0 || in_commit == 0);
         n += 7) {
        for (u32 tasklet = 0; tasklet < 2; ++tasklet) {
            SCOPED_TRACE("crash=" + std::to_string(tasklet) + "@" +
                         std::to_string(n));
            const auto stats = runDistributedMoveCheck(
                GetParam(),
                FaultPlan::parse("seed=1;crash=" +
                                 std::to_string(tasklet) + "@" +
                                 std::to_string(n)));
            in_prepare += stats.crashes_in_prepare;
            in_commit += stats.crashes_in_commit;
        }
    }
    EXPECT_GT(in_prepare, 0u)
        << "sweep never crashed a participant mid-prepare";
    EXPECT_GT(in_commit, 0u)
        << "sweep never crashed a participant mid-commit";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, Serializability,
                         testing::ValuesIn(allParams()), paramName);
