/**
 * @file
 * Tests for the Block-STM-style ordered block executor: the committed
 * state must equal sequential execution in index order, for order-
 * sensitive bodies, across STM kinds and tasklet counts.
 */

#include <gtest/gtest.h>

#include "hostapp/block_executor.hh"

using namespace pimstm;
using namespace pimstm::core;
using namespace pimstm::hostapp;

namespace
{

BlockExecutorConfig
cfgFor(StmKind kind, unsigned tasklets)
{
    BlockExecutorConfig cfg;
    cfg.kind = kind;
    cfg.tasklets = tasklets;
    cfg.state_words = 64;
    cfg.mram_bytes = 1 * 1024 * 1024;
    return cfg;
}

/** Order-sensitive body: even tx double cell (i % 8), odd tx add 1.
 * The final value depends on the exact execution order. */
void
orderSensitiveBody(TxHandle &tx, u32 i, runtime::SharedArray32 &state)
{
    const sim::Addr cell = state.at(i % 8);
    const u32 v = tx.read(cell);
    tx.write(cell, (i % 2 == 0) ? v * 2 + 1 : v + 3);
}

/** Host-side sequential reference. */
std::vector<u32>
sequentialReference(u32 num_txs)
{
    std::vector<u32> state(8, 0);
    for (u32 i = 0; i < num_txs; ++i) {
        u32 &v = state[i % 8];
        v = (i % 2 == 0) ? v * 2 + 1 : v + 3;
    }
    return state;
}

class BlockExecAll : public testing::TestWithParam<StmKind>
{
};

std::string
kindName(const testing::TestParamInfo<StmKind> &info)
{
    std::string s = stmKindName(info.param);
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

} // namespace

TEST_P(BlockExecAll, OrderedExecutionMatchesSequential)
{
    constexpr u32 kTxs = 48;
    BlockExecutor exec(cfgFor(GetParam(), 6));
    const auto r = exec.run(kTxs, [&](TxHandle &tx, u32 i) {
        orderSensitiveBody(tx, i, exec.state());
    });
    EXPECT_EQ(r.commits, kTxs);

    const auto ref = sequentialReference(kTxs);
    for (u32 w = 0; w < 8; ++w)
        EXPECT_EQ(exec.state().peek(exec.dpu(), w), ref[w])
            << "word " << w;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BlockExecAll,
                         testing::ValuesIn(allStmKindsExtended()),
                         kindName);

TEST(BlockExecutorTest, SingleTaskletIsTriviallyOrdered)
{
    BlockExecutor exec(cfgFor(StmKind::NOrec, 1));
    const auto r = exec.run(20, [&](TxHandle &tx, u32 i) {
        orderSensitiveBody(tx, i, exec.state());
    });
    EXPECT_EQ(r.commits, 20u);
    const auto ref = sequentialReference(20);
    for (u32 w = 0; w < 8; ++w)
        EXPECT_EQ(exec.state().peek(exec.dpu(), w), ref[w]);
}

TEST(BlockExecutorTest, UnorderedModeStillSerializable)
{
    // Commutative bodies: unordered mode must still produce the same
    // total (serializability without the mandated order).
    BlockExecutor exec(cfgFor(StmKind::TinyEtlWb, 8));
    const auto r = exec.run(
        64,
        [&](TxHandle &tx, u32) {
            const sim::Addr cell = exec.state().at(0);
            tx.write(cell, tx.read(cell) + 1);
        },
        /*ordered=*/false);
    EXPECT_EQ(r.commits, 64u);
    EXPECT_EQ(exec.state().peek(exec.dpu(), 0), 64u);
}

TEST(BlockExecutorTest, OrderingCostsAborts)
{
    // The turn gate converts ordering waits into speculative retries:
    // ordered runs must see more aborts than unordered on the same
    // independent-transaction block.
    auto body = [](TxHandle &tx, u32 i, runtime::SharedArray32 &st) {
        const sim::Addr cell = st.at(i % 32);
        tx.write(cell, tx.read(cell) + i);
    };
    BlockExecutor ordered(cfgFor(StmKind::NOrec, 8));
    const auto ro = ordered.run(64, [&](TxHandle &tx, u32 i) {
        body(tx, i, ordered.state());
    });
    BlockExecutor unordered(cfgFor(StmKind::NOrec, 8));
    const auto ru = unordered.run(
        64,
        [&](TxHandle &tx, u32 i) { body(tx, i, unordered.state()); },
        /*ordered=*/false);
    EXPECT_GT(ro.aborts, ru.aborts);
    EXPECT_EQ(ro.commits, ru.commits);
}

TEST(BlockExecutorTest, BlocksComposeAcrossRuns)
{
    BlockExecutor exec(cfgFor(StmKind::VrEtlWb, 4));
    for (int block = 0; block < 3; ++block) {
        exec.run(16, [&](TxHandle &tx, u32) {
            const sim::Addr cell = exec.state().at(1);
            tx.write(cell, tx.read(cell) + 1);
        });
    }
    EXPECT_EQ(exec.state().peek(exec.dpu(), 1), 48u);
}

TEST(BlockExecutorTest, DeterministicReplay)
{
    auto run_once = [] {
        BlockExecutor exec(cfgFor(StmKind::NOrec, 5));
        const auto r = exec.run(40, [&](TxHandle &tx, u32 i) {
            orderSensitiveBody(tx, i, exec.state());
        });
        return std::make_pair(r.seconds, r.aborts);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(BlockExecutorTest, Tl2ExtensionKindWorksEverywhereTooSmoke)
{
    // TL2 passes the full ordered-block matrix via the parameterized
    // suite; this smoke test pins its identity.
    sim::DpuConfig dc;
    dc.mram_bytes = 1 * 1024 * 1024;
    sim::Dpu dpu(dc, sim::TimingConfig{});
    StmConfig sc;
    sc.kind = StmKind::Tl2;
    sc.num_tasklets = 1;
    auto stm = makeStm(dpu, sc);
    EXPECT_STREQ(stm->name(), "TL2");
}
