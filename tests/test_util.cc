/**
 * @file
 * Unit tests for the util layer: RNG determinism and distribution,
 * statistics helpers, table formatting, error helpers, bit tricks.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats_math.hh"
#include "util/table.hh"
#include "util/types.hh"

using namespace pimstm;

TEST(Types, NextPow2)
{
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(2), 2u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(12500), 16384u);
    EXPECT_EQ(nextPow2(65536), 65536u);
}

TEST(Types, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(256));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(12500));
}

TEST(Types, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(Types, AlignUp)
{
    EXPECT_EQ(alignUp(0, 8), 0u);
    EXPECT_EQ(alignUp(1, 8), 8u);
    EXPECT_EQ(alignUp(8, 8), 8u);
    EXPECT_EQ(alignUp(9, 4), 12u);
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowIsRoughlyUniform)
{
    Rng rng(11);
    std::array<int, 8> buckets{};
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i)
        ++buckets[rng.below(8)];
    for (int b : buckets) {
        EXPECT_GT(b, kDraws / 8 * 0.9);
        EXPECT_LT(b, kDraws / 8 * 1.1);
    }
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const u64 v = rng.range(5, 7);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 7u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ReseedResets)
{
    Rng rng(9);
    const u64 first = rng.next();
    rng.next();
    rng.reseed(9);
    EXPECT_EQ(rng.next(), first);
}

TEST(RngTest, DeriveSeedSeparatesStreams)
{
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(1, 1));
    EXPECT_NE(deriveSeed(1, 0, 0), deriveSeed(1, 0, 1));
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(2, 0));
    EXPECT_EQ(deriveSeed(1, 2, 3), deriveSeed(1, 2, 3));
}

TEST(StatsMath, MeanAndStddev)
{
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(stddev(xs), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(StatsMath, Geomean)
{
    EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2, 8}), 4.0, 1e-12);
    EXPECT_THROW(geomean({1, 0}), FatalError);
    EXPECT_THROW(geomean({-1}), FatalError);
}

TEST(StatsMath, MinMax)
{
    const std::vector<double> xs{3, 1, 2};
    EXPECT_DOUBLE_EQ(minOf(xs), 1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 3.0);
}

TEST(StatsMath, PercentileAndMedian)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(median(xs), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 2}), 3.0);
}

TEST(TableTest, TextAlignment)
{
    Table t({"a", "long_header"});
    t.newRow().cell("x").cell(1.5, 1);
    t.newRow().cell("yyyy").cell(u64{42});
    std::ostringstream os;
    t.printText(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
}

TEST(TableTest, CsvEscaping)
{
    Table t({"name", "note"});
    t.newRow().cell("plain").cell("has,comma");
    t.newRow().cell("quote\"inside").cell("multi\nline");
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableTest, CellBeforeRowPanics)
{
    Table t({"a"});
    EXPECT_THROW(t.cell("x"), PanicError);
}

TEST(Logging, FatalAndPanicCarryMessages)
{
    try {
        fatal("value was ", 42);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 42"),
                  std::string::npos);
    }
    try {
        panic("broken ", "invariant");
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("broken invariant"),
                  std::string::npos);
    }
}

TEST(Logging, ConditionalHelpers)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}
