/**
 * @file
 * Durable-transaction tests (docs/durability.md): whole-DPU crash
 * recovery verified end-to-end through the fault injector.
 *
 *  - crash-point sweep: for every STM kind, inject a whole-DPU crash
 *    at op 1, 2, 3, ... until the plan no longer fires; every run must
 *    recover, restart, complete and keep a sum-conservation invariant.
 *  - torn-write differential: the same crash points replayed under
 *    different scramble seeds (the persist model's keep / revert-8B /
 *    tear-low / tear-high choices) must all recover correctly.
 *  - recovery idempotence, durable-on semantic no-op (no faults), the
 *    configuration exclusion matrix, and the distributed_kv satellite:
 *    durable shards surviving shard crashes with token conservation,
 *    and the coordinator WAL replaying persisted decisions.
 *
 * Fiber caveat: an injected whole-DPU crash abandons the other
 * tasklets' fiber stacks without unwinding (sim/fiber.hh), so tasklet
 * bodies here keep only POD state on the fiber stack — anything
 * heap-owning lives on the host side, captured by reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/stm_factory.hh"
#include "hostapp/distributed_kv.hh"
#include "runtime/driver.hh"
#include "runtime/shared_array.hh"
#include "sim/fault.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;
using pimstm::runtime::SharedArray32;

namespace
{

constexpr u32 kAccounts = 4;
constexpr u32 kInitial = 10;
constexpr u32 kTxPerTasklet = 3;
constexpr unsigned kTasklets = 2;

/** One crash-recover-restart execution of the transfer program. */
struct TransferRun
{
    unsigned crashes = 0;
    RecoveryReport recovered; ///< summed over all recovery passes
    StmStats stm;
};

/**
 * Run the bank-transfer program under @p plan with durable mode on:
 * each transaction moves one unit between two random accounts, so the
 * total balance is conserved across commits, aborts, crashes,
 * recoveries and restarts — including transactions that committed
 * durably but whose host-side bookkeeping died with the DPU (their
 * re-execution after restart is a new transfer, not a double-apply).
 */
TransferRun
runTransfersWithRecovery(StmKind kind, const FaultPlan &plan,
                         unsigned max_restarts = 64)
{
    DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 * 1024 * 1024;
    dpu_cfg.seed = 2027;
    dpu_cfg.faults = plan;
    Dpu dpu(dpu_cfg, TimingConfig{});

    StmConfig cfg;
    cfg.kind = kind;
    cfg.num_tasklets = kTasklets;
    cfg.max_read_set = 8;
    cfg.max_write_set = 8;
    cfg.data_words_hint = kAccounts;
    cfg.durable = true;
    auto stm = makeStm(dpu, cfg);

    SharedArray32 accounts(dpu, Tier::Mram, kAccounts);
    accounts.fill(dpu, kInitial);
    // Host-loaded initial data is durable before launch (the load DMA
    // completes before the program starts); fence so an early crash
    // cannot revert it. The driver does the same after Workload::setup.
    dpu.mram().fence();

    const auto body = [&](DpuContext &ctx) {
        for (u32 t = 0; t < kTxPerTasklet; ++t) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                const u32 src =
                    static_cast<u32>(ctx.rng().below(kAccounts));
                const u32 dst =
                    static_cast<u32>(ctx.rng().below(kAccounts));
                const u32 s = tx.read(accounts.at(src));
                const u32 d = tx.read(accounts.at(dst));
                if (src == dst || s == 0)
                    return;
                tx.write(accounts.at(src), s - 1);
                tx.write(accounts.at(dst), d + 1);
            });
        }
    };

    TransferRun out;
    dpu.addTasklets(kTasklets, body);
    for (;;) {
        try {
            dpu.run();
            break;
        } catch (const DpuCrashError &) {
            ++out.crashes;
            if (out.crashes > max_restarts)
                throw; // fail the test loudly instead of spinning
            dpu.resetRun(/*reset_faults=*/false);
            const RecoveryReport rep = stm->recoverAfterCrash();
            out.recovered.redone += rep.redone;
            out.recovered.undone += rep.undone;
            out.recovered.discarded += rep.discarded;
            out.recovered.torn += rep.torn;
            dpu.addTasklets(kTasklets, body);
        }
    }

    u64 sum = 0;
    for (u32 i = 0; i < kAccounts; ++i)
        sum += accounts.peek(dpu, i);
    EXPECT_EQ(sum, static_cast<u64>(kAccounts) * kInitial)
        << stmKindName(kind) << ": total balance not conserved";

    out.stm = stm->aggregateStats();
    return out;
}

class Durable : public testing::TestWithParam<StmKind>
{
};

std::string
kindName(const testing::TestParamInfo<StmKind> &info)
{
    std::string s = stmKindName(info.param);
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

} // namespace

TEST_P(Durable, EveryReachableCrashPointRecovers)
{
    // Walk the crash point across the whole injectable op stream: op 1
    // lands before the first transaction touches anything, the last
    // reachable op lands inside the final commit, and the sweep only
    // ends when a plan stops firing (the run finished first). Every
    // landing spot must recover to a sum-conserving state.
    unsigned delivered = 0;
    for (unsigned op = 1; op < 5000; ++op) {
        SCOPED_TRACE("dpu-crash=" + std::to_string(op));
        const auto r = runTransfersWithRecovery(
            GetParam(),
            FaultPlan::parse("dpu-crash=" + std::to_string(op)));
        if (r.crashes == 0)
            break; // op count exceeds the program: sweep complete
        EXPECT_EQ(r.crashes, 1u);
        EXPECT_EQ(r.stm.recoveries, 1u);
        ++delivered;
    }
    EXPECT_GT(delivered, 10u)
        << "sweep never exercised a meaningful range of crash points";
}

TEST_P(Durable, TornWriteSeedDifferentialKeepsInvariant)
{
    // The same double-crash plan replayed under different persist-model
    // seeds: each seed picks different per-line crash effects (keep,
    // revert 8B, tear low half, tear high half), so recovery sees
    // different flushed prefixes and torn records — and must reach a
    // consistent state from every one of them.
    RecoveryReport total;
    unsigned crashes = 0;
    for (unsigned seed = 0; seed < 8; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        const auto r = runTransfersWithRecovery(
            GetParam(),
            FaultPlan::parse("dpu-crash=25;dpu-crash=60;seed=" +
                             std::to_string(seed)));
        crashes += r.crashes;
        total.redone += r.recovered.redone;
        total.undone += r.recovered.undone;
        total.discarded += r.recovered.discarded;
        total.torn += r.recovered.torn;
    }
    EXPECT_GT(crashes, 0u) << "no crash ever fired across the seeds";
    EXPECT_GT(total.redone + total.undone + total.discarded + total.torn,
              0u)
        << "recovery never found any log activity across the seeds";
}

TEST_P(Durable, RecoveryIsIdempotent)
{
    DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 * 1024 * 1024;
    dpu_cfg.seed = 11;
    dpu_cfg.faults = FaultPlan::parse("dpu-crash=30");
    Dpu dpu(dpu_cfg, TimingConfig{});

    StmConfig cfg;
    cfg.kind = GetParam();
    cfg.num_tasklets = kTasklets;
    cfg.max_read_set = 8;
    cfg.max_write_set = 8;
    cfg.data_words_hint = kAccounts;
    cfg.durable = true;
    auto stm = makeStm(dpu, cfg);

    SharedArray32 accounts(dpu, Tier::Mram, kAccounts);
    accounts.fill(dpu, kInitial);
    dpu.mram().fence(); // host-loaded data is durable before launch
    const auto body = [&](DpuContext &ctx) {
        for (u32 t = 0; t < 8; ++t) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                const u32 a = static_cast<u32>(ctx.rng().below(kAccounts));
                const u32 b = static_cast<u32>(ctx.rng().below(kAccounts));
                const u32 va = tx.read(accounts.at(a));
                const u32 vb = tx.read(accounts.at(b));
                if (a == b || va == 0)
                    return;
                tx.write(accounts.at(a), va - 1);
                tx.write(accounts.at(b), vb + 1);
            });
        }
    };

    dpu.addTasklets(kTasklets, body);
    ASSERT_THROW(dpu.run(), DpuCrashError);

    (void)stm->recoverAfterCrash();
    // A second pass must find only truncated slots: recovery rebuilt
    // the committed state and left nothing behind to replay.
    const RecoveryReport second = stm->recoverAfterCrash();
    EXPECT_EQ(second.redone, 0u);
    EXPECT_EQ(second.undone, 0u);
    EXPECT_EQ(second.discarded, 0u);
    EXPECT_EQ(second.torn, 0u);

    // And the machine restarts and completes normally afterwards.
    dpu.resetRun(/*reset_faults=*/false);
    dpu.addTasklets(kTasklets, body);
    dpu.run();
    u64 sum = 0;
    for (u32 i = 0; i < kAccounts; ++i)
        sum += accounts.peek(dpu, i);
    EXPECT_EQ(sum, static_cast<u64>(kAccounts) * kInitial);
}

TEST_P(Durable, NoCrashDurableRunIsSemanticNoOp)
{
    // With no fault plan, durable mode changes costs (log writes and
    // fences) but never outcomes: the run completes, conserves the
    // balance sum, persists every commit that wrote anything and never
    // triggers recovery. Read-only and empty-write-set commits skip
    // the persist path, so durable_commits can trail commits.
    const auto r = runTransfersWithRecovery(GetParam(), FaultPlan{});
    EXPECT_EQ(r.crashes, 0u);
    EXPECT_EQ(r.stm.recoveries, 0u);
    EXPECT_EQ(r.stm.torn_logs, 0u);
    EXPECT_GT(r.stm.flush_fences, 0u);
    EXPECT_GT(r.stm.log_appends, 0u);
    EXPECT_GT(r.stm.durable_commits, 0u);
    EXPECT_LE(r.stm.durable_commits, r.stm.commits);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, Durable,
                         testing::ValuesIn(allStmKindsExtended()),
                         kindName);

TEST(DurableConfig, ExclusionsAreRefused)
{
    DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 << 20;
    Dpu dpu(dpu_cfg, TimingConfig{});

    StmConfig base;
    base.kind = StmKind::NOrec;
    base.num_tasklets = 2;
    base.data_words_hint = 16;
    base.durable = true;

    {
        StmConfig cfg = base;
        cfg.serial_fallback_after = 4;
        EXPECT_THROW(makeStm(dpu, cfg), FatalError);
    }
    {
        StmConfig cfg = base;
        cfg.boosting = true;
        EXPECT_THROW(makeStm(dpu, cfg), FatalError);
    }
    {
        StmConfig cfg = base;
        cfg.external_layout = true;
        EXPECT_THROW(makeStm(dpu, cfg), FatalError);
    }
    {
        // Driver-level: the adaptive controller swaps kinds through the
        // external-layout wrapper, so durable runs refuse it up front.
        runtime::RunSpec spec;
        spec.kind = StmKind::NOrec;
        spec.tasklets = 2;
        spec.mram_bytes = 1 << 20;
        spec.durable = true;
        spec.adaptive.enabled = true;
        workloads::ArrayBench wl(
            workloads::ArrayBenchParams::workloadB(2));
        EXPECT_THROW((void)runtime::runWorkload(wl, spec), FatalError);
    }
}

namespace
{

/**
 * Driver-level transfer workload whose verify() is crash-safe: the
 * balance sum is conserved no matter how many crash-restart rounds the
 * driver ran. (A count-based invariant like ArrayBench's sum ==
 * commits * rmw is NOT crash-safe — a crash between the durable commit
 * point and the host-side commit tally leaves an applied effect with
 * no matching count.)
 */
class TransferWl : public runtime::Workload
{
  public:
    const char *name() const override { return "TransferWl"; }

    void
    configure(core::StmConfig &cfg) const override
    {
        cfg.max_read_set = 8;
        cfg.max_write_set = 8;
        cfg.data_words_hint = kAccounts;
    }

    void
    setup(Dpu &dpu, Stm &) override
    {
        accounts_ = SharedArray32(dpu, Tier::Mram, kAccounts);
        accounts_.fill(dpu, kInitial);
    }

    void
    tasklet(DpuContext &ctx, Stm &stm) override
    {
        for (u32 t = 0; t < 20; ++t) {
            atomically(stm, ctx, [&](TxHandle &tx) {
                const u32 a = static_cast<u32>(ctx.rng().below(kAccounts));
                const u32 b = static_cast<u32>(ctx.rng().below(kAccounts));
                const u32 va = tx.read(accounts_.at(a));
                const u32 vb = tx.read(accounts_.at(b));
                if (a == b || va == 0)
                    return;
                tx.write(accounts_.at(a), va - 1);
                tx.write(accounts_.at(b), vb + 1);
            });
        }
    }

    void
    verify(Dpu &dpu, Stm &) override
    {
        u64 sum = 0;
        for (u32 i = 0; i < kAccounts; ++i)
            sum += accounts_.peek(dpu, i);
        fatalIf(sum != static_cast<u64>(kAccounts) * kInitial,
                "transfer sum not conserved: ", sum);
    }

  private:
    SharedArray32 accounts_;
};

} // namespace

TEST(DurableDriver, CrashRestartLoopCompletesRuns)
{
    for (StmKind kind : allStmKinds()) {
        SCOPED_TRACE(stmKindName(kind));
        runtime::RunSpec spec;
        spec.kind = kind;
        spec.tasklets = 4;
        spec.mram_bytes = 8 * 1024 * 1024;
        spec.durable = true;
        spec.faults = FaultPlan::parse("dpu-crash=120;dpu-crash=420");

        TransferWl wl;
        const auto r = runtime::runWorkload(wl, spec);
        EXPECT_GT(r.dpu.dpu_crashes, 0u);
        EXPECT_EQ(r.stm.recoveries, r.dpu.dpu_crashes);
    }
}

TEST(DurableDriver, NonDurableRunPropagatesTheCrash)
{
    runtime::RunSpec spec;
    spec.kind = StmKind::NOrec;
    spec.tasklets = 4;
    spec.mram_bytes = 8 * 1024 * 1024;
    spec.faults = FaultPlan::parse("dpu-crash=120");

    workloads::ArrayBench wl(workloads::ArrayBenchParams::workloadB(12));
    EXPECT_THROW((void)runtime::runWorkload(wl, spec), DpuCrashError);
}

namespace
{

/**
 * Durable distributed_kv harness: seed tokens, churn them with
 * cross-shard moves, then check conservation — the key population and
 * the multiset of values must both be exactly what was seeded, since
 * every committed movek relocates a token without changing its value.
 * Exactly-once for moves is the coordinator WAL + idempotent prepare
 * fragments; plain puts are idempotent, so at-least-once re-execution
 * after a shard crash is invisible.
 */
hostapp::TwoPcStats
runDurableKvChurn(const std::string &fault_spec)
{
    constexpr unsigned kShards = 4;
    constexpr u32 kTokens = 16;
    constexpr u32 kKeySpace = 32;

    hostapp::DistributedKvConfig cfg;
    cfg.shards = kShards;
    cfg.capacity_per_shard = 256;
    cfg.kind = StmKind::TinyEtlWt; // in-place kind: exercises undo logs
    cfg.tasklets_per_dpu = 4;
    cfg.mram_bytes = 1 * 1024 * 1024;
    cfg.durable = true;
    cfg.faults = FaultPlan::parse(fault_spec);
    hostapp::DistributedKv kv(cfg);

    std::vector<hostapp::KvOp> seed;
    std::vector<u32> seeded_values;
    for (u32 k = 1; k <= kTokens; ++k) {
        seed.push_back(hostapp::KvOp::put(k, 5000 + k));
        seeded_values.push_back(5000 + k);
    }
    kv.execute(seed);

    Rng rng(97);
    for (int batch = 0; batch < 3; ++batch) {
        std::vector<hostapp::CrossShardTx> txs;
        for (int i = 0; i < 8; ++i) {
            const u32 s = static_cast<u32>(rng.below(kKeySpace)) + 1;
            const u32 d = static_cast<u32>(rng.below(kKeySpace)) + 1;
            txs.push_back(hostapp::CrossShardTx::move(s, d));
        }
        (void)kv.execute({}, txs);
    }

    EXPECT_EQ(kv.livePins(), 0u);
    EXPECT_EQ(kv.population(), kTokens) << "tokens not conserved";
    std::vector<u32> values;
    for (u32 k = 1; k <= kKeySpace; ++k) {
        u32 v = 0;
        if (kv.peek(k, v))
            values.push_back(v);
    }
    std::sort(values.begin(), values.end());
    EXPECT_EQ(values, seeded_values) << "token values not conserved";
    return kv.stats();
}

} // namespace

TEST(DurableDistributedKv, ShardCrashesRecoverAndConserveTokens)
{
    // Whole-shard crashes land mid-launch; the durable shards recover
    // in place and the launch re-runs only the unacknowledged items.
    // Sweep a few crash points so at least one plan fires on at least
    // one shard (op counts differ per shard and per point).
    u64 recoveries = 0;
    u64 persists = 0;
    for (unsigned op : {25u, 60u, 110u, 190u}) {
        SCOPED_TRACE("dpu-crash=" + std::to_string(op));
        const auto stats = runDurableKvChurn(
            "dpu-crash=" + std::to_string(op) + ";seed=3");
        recoveries += stats.shard_recoveries;
        persists += stats.wal_persists;
    }
    EXPECT_GT(recoveries, 0u) << "no shard crash was ever delivered";
    EXPECT_GT(persists, 0u) << "no commit decision was ever persisted";
}

namespace {

/*
 * Moves whose destination provably lives on a different shard than the
 * source. Same-shard pairs degrade to LocalMove items that commit
 * immediately outside the 2PC/WAL path, which would dilute what the
 * coordinator-crash tests exercise.
 */
std::vector<std::pair<u32, u32>>
crossShardPairs(unsigned shards, u32 count)
{
    std::vector<std::pair<u32, u32>> out;
    u32 dst = 100;
    for (u32 k = 1; k <= count; ++k) {
        while (hostapp::shardOfKey(dst, shards) ==
               hostapp::shardOfKey(k, shards))
            ++dst;
        out.emplace_back(k, dst++);
    }
    return out;
}

} // namespace

TEST(DurableDistributedKv, CoordinatorReplaysPersistedDecisions)
{
    // A coordinator crash mid-decision-delivery: commit verdicts were
    // already persisted to the WAL seam, so recover() must replay them
    // (decisions_replayed) and finish delivering idempotently — the
    // committed moves survive the coordinator death.
    hostapp::DistributedKvConfig cfg;
    cfg.shards = 4;
    cfg.capacity_per_shard = 256;
    cfg.kind = StmKind::NOrec;
    cfg.tasklets_per_dpu = 4;
    cfg.mram_bytes = 1 * 1024 * 1024;
    cfg.durable = true;
    hostapp::DistributedKv kv(cfg);

    std::vector<hostapp::KvOp> seed;
    for (u32 k = 1; k <= 8; ++k)
        seed.push_back(hostapp::KvOp::put(k, 7000 + k));
    kv.execute(seed);

    // Disjoint cross-shard moves to empty destinations: every one must
    // go through 2PC and commit.
    const auto pairs = crossShardPairs(cfg.shards, 8);
    std::vector<hostapp::CrossShardTx> txs;
    for (const auto &p : pairs)
        txs.push_back(hostapp::CrossShardTx::move(p.first, p.second));

    kv.injectCoordinatorCrash(
        hostapp::DistributedKv::CrashPoint::MidDecision,
        /*max_decision_shards=*/1);
    EXPECT_THROW((void)kv.execute({}, txs),
                 hostapp::DistributedKv::CoordinatorCrashed);
    ASSERT_TRUE(kv.needsRecovery());

    kv.recover();
    const auto stats = kv.stats();
    EXPECT_GT(stats.decisions_replayed, 0u)
        << "no persisted decision came back from the WAL";
    EXPECT_GT(stats.wal_persists, 0u);

    // The replayed commits are durable facts: every token sits at its
    // destination, none was lost or duplicated.
    EXPECT_EQ(kv.livePins(), 0u);
    EXPECT_EQ(kv.population(), 8u);
    for (const auto &p : pairs) {
        u32 v = 0;
        EXPECT_TRUE(kv.peek(p.second, v))
            << "token " << p.first << " not at its destination";
        EXPECT_EQ(v, 7000 + p.first);
    }
}

TEST(DurableDistributedKv, AfterPrepareCrashIsPresumedAbort)
{
    // The counterpart: a crash after the votes but before any decision
    // reaches the WAL seam must abort everything on recovery — no
    // half-applied moves, tokens stay at their sources.
    hostapp::DistributedKvConfig cfg;
    cfg.shards = 4;
    cfg.capacity_per_shard = 256;
    cfg.kind = StmKind::NOrec;
    cfg.tasklets_per_dpu = 4;
    cfg.mram_bytes = 1 * 1024 * 1024;
    cfg.durable = true;
    hostapp::DistributedKv kv(cfg);

    std::vector<hostapp::KvOp> seed;
    for (u32 k = 1; k <= 8; ++k)
        seed.push_back(hostapp::KvOp::put(k, 7000 + k));
    kv.execute(seed);

    const auto pairs = crossShardPairs(cfg.shards, 8);
    std::vector<hostapp::CrossShardTx> txs;
    for (const auto &p : pairs)
        txs.push_back(hostapp::CrossShardTx::move(p.first, p.second));

    kv.injectCoordinatorCrash(
        hostapp::DistributedKv::CrashPoint::AfterPrepare);
    EXPECT_THROW((void)kv.execute({}, txs),
                 hostapp::DistributedKv::CoordinatorCrashed);
    kv.recover();

    EXPECT_EQ(kv.stats().decisions_replayed, 0u)
        << "nothing was persisted, nothing may replay";
    EXPECT_EQ(kv.livePins(), 0u);
    EXPECT_EQ(kv.population(), 8u);
    for (u32 k = 1; k <= 8; ++k) {
        u32 v = 0;
        EXPECT_TRUE(kv.peek(k, v)) << "token " << k << " left its source";
        EXPECT_EQ(v, 7000 + k);
    }
}
