/**
 * @file
 * Epoch adaptation controller tests (docs/adaptive.md): the pure
 * decision policy on synthetic counter streams (throttle hysteresis
 * and probe-and-revert, the contention ladder, explore-then-commit
 * kind selection, migration picking), the controller-off bitwise
 * identity guarantee across every STM kind, kind-switch
 * serializability under randomized fault plans, park/unpark
 * conservation, and run-to-run determinism of the decision log.
 *
 * The AdaptiveDecide.* suite is fiber-free (pure policy on synthetic
 * samples); everything else runs the simulator.
 */

#include <gtest/gtest.h>

#include "core/stm_factory.hh"
#include "runtime/adaptive.hh"
#include "runtime/driver.hh"
#include "sim/fault.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::runtime;

namespace
{

//
// Pure-policy helpers: build synthetic EpochSamples whose derived
// signals (wasteShare, abortRate, commitRate) take exact values.
//

constexpr Cycles kEpoch = 100000;

/** A sample with the given commits and a waste share of @p share for
 * @p tasklets effective tasklets (all waste charged to backoff). */
EpochSample
wasteSample(u64 commits, double share, unsigned tasklets)
{
    EpochSample s;
    s.commits = commits;
    s.epoch_cycles = kEpoch;
    s.backoff_cycles = static_cast<u64>(
        share * static_cast<double>(kEpoch) * tasklets);
    return s;
}

/** A sample with the given commit/abort counts (abort-rate signal);
 * backoff-dominated waste unless @p lock_waits. */
EpochSample
abortSample(u64 commits, u64 aborts, bool lock_waits = false)
{
    EpochSample s;
    s.commits = commits;
    s.aborts = aborts;
    s.epoch_cycles = kEpoch;
    if (lock_waits)
        s.lock_wait_cycles = 10000;
    else
        s.backoff_cycles = 10000;
    return s;
}

AdaptiveSpec
throttleOnlySpec()
{
    AdaptiveSpec spec;
    spec.enabled = true;
    spec.tune_backoff = false;
    spec.tune_kind = false;
    spec.tune_migration = false;
    return spec;
}

AdaptiveSpec
backoffOnlySpec()
{
    AdaptiveSpec spec;
    spec.enabled = true;
    spec.tune_throttle = false;
    spec.tune_kind = false;
    spec.tune_migration = false;
    return spec;
}

ControllerState
stateFor(unsigned tasklets)
{
    ControllerState st;
    st.num_tasklets = tasklets;
    return st;
}

std::vector<AdaptiveDecision>
feed(ControllerState &st, const EpochSample &s, const AdaptiveSpec &spec,
     unsigned epochs = 1)
{
    std::vector<AdaptiveDecision> all;
    for (unsigned i = 0; i < epochs; ++i) {
        auto d = AdaptiveController::decide(st, s, spec);
        all.insert(all.end(), d.begin(), d.end());
    }
    return all;
}

} // namespace

//
// AdaptiveDecide — the pure policy (fiber-free).
//

TEST(AdaptiveDecide, ThrottleDownNeedsHysteresis)
{
    const AdaptiveSpec spec = throttleOnlySpec();
    ControllerState st = stateFor(16);
    const EpochSample high = wasteSample(100, 0.6, 16);

    EXPECT_TRUE(feed(st, high, spec).empty()) << "one epoch must not act";
    const auto d = feed(st, high, spec);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::ThrottleDown);
    EXPECT_EQ(static_cast<unsigned>(d[0].value), 16u * 2 / 3);
    EXPECT_EQ(st.tasklet_limit, 16u * 2 / 3);
    EXPECT_TRUE(st.throttle_probe);
}

TEST(AdaptiveDecide, ThrottleProbeKeptOnImprovement)
{
    const AdaptiveSpec spec = throttleOnlySpec();
    ControllerState st = stateFor(16);
    const EpochSample high = wasteSample(100, 0.6, 16);
    feed(st, high, spec, 2); // rate 1.0, throttled to 10

    // Parking bought >5% commit rate: the bet is kept, no decision.
    const EpochSample better = wasteSample(110, 0.3, 10);
    EXPECT_TRUE(feed(st, better, spec).empty());
    EXPECT_EQ(st.tasklet_limit, 10u);
    EXPECT_FALSE(st.throttle_probe);
    EXPECT_FALSE(st.throttle_hold);
}

TEST(AdaptiveDecide, ThrottleProbeRevertsWhenRateDoesNotImprove)
{
    const AdaptiveSpec spec = throttleOnlySpec();
    ControllerState st = stateFor(16);
    const EpochSample high = wasteSample(100, 0.6, 16);
    feed(st, high, spec, 2);

    // Same commit rate as before parking: concurrency was not the
    // problem — revert and hold off for the rest of the episode.
    const auto d = feed(st, wasteSample(100, 0.6, 10), spec);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::ThrottleUp);
    EXPECT_EQ(st.tasklet_limit, 0u);
    EXPECT_TRUE(st.throttle_hold);

    // Held: sustained pressure no longer triggers throttling...
    EXPECT_TRUE(feed(st, high, spec, 4).empty());

    // ...until a calm epoch ends the episode and re-arms it.
    feed(st, wasteSample(100, 0.05, 16), spec);
    EXPECT_FALSE(st.throttle_hold);
    const auto again = feed(st, high, spec, 2);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].action, AdaptiveAction::ThrottleDown);
}

TEST(AdaptiveDecide, ThrottleSafetyValveLiftsOnZeroCommits)
{
    const AdaptiveSpec spec = throttleOnlySpec();
    ControllerState st = stateFor(16);
    st.tasklet_limit = 4;

    const auto d = feed(st, wasteSample(0, 0.0, 4), spec);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::ThrottleUp);
    EXPECT_EQ(static_cast<unsigned>(d[0].value), 0u);
    EXPECT_EQ(st.tasklet_limit, 0u);
}

TEST(AdaptiveDecide, ThrottleUnparkIsMultiplicative)
{
    const AdaptiveSpec spec = throttleOnlySpec();
    ControllerState st = stateFor(16);
    st.tasklet_limit = 4;
    const EpochSample calm = wasteSample(100, 0.02, 4);

    auto d = feed(st, calm, spec, 2);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::ThrottleUp);
    EXPECT_EQ(st.tasklet_limit, 8u);

    // 8*2 >= 16: fully unparked, throttle off.
    d = feed(st, wasteSample(100, 0.02, 8), spec, 2);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(st.tasklet_limit, 0u);
}

TEST(AdaptiveDecide, NoFlapInsideHysteresisBand)
{
    const AdaptiveSpec spec = throttleOnlySpec();
    ControllerState st = stateFor(16);
    const EpochSample band = wasteSample(100, 0.3, 16);
    const EpochSample high = wasteSample(100, 0.6, 16);

    // The band sample resets the streak, so alternating high/band
    // never accumulates the hysteresis and never acts.
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(feed(st, high, spec).empty());
        EXPECT_TRUE(feed(st, band, spec).empty());
    }
    EXPECT_EQ(st.tasklet_limit, 0u);
}

TEST(AdaptiveDecide, CmWaitProbeRevertsAndHolds)
{
    const AdaptiveSpec spec = backoffOnlySpec();
    ControllerState st = stateFor(16);
    const EpochSample pressure = abortSample(10, 40);

    auto d = feed(st, pressure, spec, 2);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::EnableCmWait);
    EXPECT_EQ(st.cm_wait_polls, spec.cm_polls);
    EXPECT_TRUE(st.cm_probe);

    // Waiting did not buy commit rate: revert, hold for the episode.
    d = feed(st, pressure, spec);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::DisableCmWait);
    EXPECT_EQ(st.cm_wait_polls, 0u);
    EXPECT_TRUE(st.backoff_hold);
    EXPECT_TRUE(feed(st, pressure, spec, 4).empty());

    // Calm epochs end the episode; pressure can then act again.
    feed(st, abortSample(100, 1), spec, 2);
    EXPECT_FALSE(st.backoff_hold);
    d = feed(st, pressure, spec, 2);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::EnableCmWait);
}

TEST(AdaptiveDecide, BackoffRaiseCapsAtConfiguredMax)
{
    AdaptiveSpec spec = backoffOnlySpec();
    spec.backoff_base_max = 32;
    ControllerState st = stateFor(16);
    st.cm_wait_polls = 3; // ladder step 1 already taken
    const EpochSample pressure = abortSample(10, 40); // backoff-dominated

    auto d = feed(st, pressure, spec, 2);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::RaiseBackoff);
    EXPECT_EQ(st.backoff_base, 32u);

    // The raise improved the rate enough to keep; at the cap, further
    // pressure must not raise again.
    EXPECT_TRUE(feed(st, abortSample(12, 40), spec).empty());
    EXPECT_TRUE(feed(st, pressure, spec, 4).empty());
    EXPECT_EQ(st.backoff_base, 32u);
}

TEST(AdaptiveDecide, CalmRelaxesBackoffThenCmWait)
{
    const AdaptiveSpec spec = backoffOnlySpec();
    ControllerState st = stateFor(16);
    st.backoff_base = 64;
    st.cm_wait_polls = 3;
    const EpochSample calm = abortSample(100, 1);

    auto d = feed(st, calm, spec, 2);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::LowerBackoff);
    EXPECT_EQ(st.backoff_base, st.default_backoff_base);

    d = feed(st, calm, spec, 2);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::DisableCmWait);
    EXPECT_EQ(st.cm_wait_polls, 0u);
}

TEST(AdaptiveDecide, KindExploreThenCommitThenReexplore)
{
    AdaptiveSpec spec;
    spec.enabled = true;
    spec.tune_throttle = false;
    spec.tune_backoff = false;
    spec.tune_migration = false;
    spec.kind_candidates = {core::StmKind::NOrec,
                            core::StmKind::TinyEtlWb};
    ControllerState st = stateFor(16);

    // Epoch 1: NOrec scored, Tiny untried -> exploration switch.
    auto d = feed(st, abortSample(100, 0), spec);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::SwitchKind);
    EXPECT_EQ(st.current_kind, core::StmKind::TinyEtlWb);

    // Epoch 2: cooldown (the candidate gets one full scored epoch).
    EXPECT_TRUE(feed(st, abortSample(300, 0), spec).empty());
    // Epoch 3: all tried, Tiny scores best -> stay committed.
    EXPECT_TRUE(feed(st, abortSample(300, 0), spec).empty());
    EXPECT_EQ(st.current_kind, core::StmKind::TinyEtlWb);

    // Phase change: the incumbent collapses below reexplore_ratio x
    // its high-water mark -> the policy re-probes the other kind.
    feed(st, abortSample(30, 0), spec); // EWMA 1.65, above 0.5*3.0
    d = feed(st, abortSample(30, 0), spec); // EWMA 0.975: collapse
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, AdaptiveAction::SwitchKind);
    EXPECT_EQ(st.current_kind, core::StmKind::NOrec);
}

TEST(AdaptiveDecide, MigrationPicksHottestAndEvictsColdest)
{
    std::vector<u8> flags;
    std::vector<u32> promote, demote;

    // Capacity 2, hottest-first above min_heat: 31 is filtered.
    AdaptiveController::pickMigrations({100, 31, 50, 40}, flags, 2, 32,
                                       promote, demote);
    EXPECT_EQ(promote, (std::vector<u32>{0, 2}));
    EXPECT_TRUE(demote.empty());
    EXPECT_EQ(flags, (std::vector<u8>{1, 0, 1, 0}));

    // A hotter candidate evicts the coldest hot entry when full.
    AdaptiveController::pickMigrations({0, 0, 0, 90}, flags, 2, 32,
                                       promote, demote);
    EXPECT_EQ(promote, (std::vector<u32>{3}));
    EXPECT_EQ(demote, (std::vector<u32>{2}));
    EXPECT_EQ(flags, (std::vector<u8>{1, 0, 0, 1}));

    // Equal heats break ties toward the lower index, deterministically.
    std::vector<u8> flags2;
    AdaptiveController::pickMigrations({50, 50, 50}, flags2, 2, 32,
                                       promote, demote);
    EXPECT_EQ(promote, (std::vector<u32>{0, 1}));
    EXPECT_TRUE(demote.empty());
}

//
// Simulator-driven suites.
//

namespace
{

RunResult
runB(const RunSpec &spec, u32 tx_per_tasklet)
{
    workloads::ArrayBench wl(
        workloads::ArrayBenchParams::workloadB(tx_per_tasklet));
    return runWorkload(wl, spec);
}

RunSpec
benchSpec(core::StmKind kind, unsigned tasklets)
{
    RunSpec spec;
    spec.kind = kind;
    spec.tasklets = tasklets;
    spec.mram_bytes = 8 * 1024 * 1024;
    return spec;
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.dpu.total_cycles, b.dpu.total_cycles);
    EXPECT_EQ(a.dpu.instructions, b.dpu.instructions);
    EXPECT_EQ(a.dpu.mram_reads, b.dpu.mram_reads);
    EXPECT_EQ(a.dpu.mram_writes, b.dpu.mram_writes);
    EXPECT_EQ(a.stm.starts, b.stm.starts);
    EXPECT_EQ(a.stm.commits, b.stm.commits);
    EXPECT_EQ(a.stm.aborts, b.stm.aborts);
    EXPECT_EQ(a.stm.reads, b.stm.reads);
    EXPECT_EQ(a.stm.writes, b.stm.writes);
    EXPECT_EQ(a.stm.validations, b.stm.validations);
    EXPECT_EQ(a.stm.lock_wait_cycles, b.stm.lock_wait_cycles);
    EXPECT_EQ(a.stm.backoff_cycles, b.stm.backoff_cycles);
}

} // namespace

/** Controller off: a spec with every adaptive field set but
 * enabled = false must be bitwise identical to the plain spec, for
 * every STM kind (the ISSUE's CI-gated do-no-harm guarantee). */
TEST(AdaptiveOff, DisabledControllerIsBitwiseIdentity)
{
    for (core::StmKind kind : core::allStmKindsExtended()) {
        const RunResult plain = runB(benchSpec(kind, 8), 30);

        RunSpec off = benchSpec(kind, 8);
        off.adaptive.enabled = false; // everything else armed
        off.adaptive.epoch_cycles = 7777;
        off.adaptive.hysteresis_epochs = 1;
        off.adaptive.kind_candidates = {core::StmKind::NOrec,
                                        core::StmKind::VrEtlWb};
        off.adaptive.hot_lock_capacity = 64;
        const RunResult gated = runB(off, 30);

        SCOPED_TRACE(core::stmKindName(kind));
        expectSameRun(plain, gated);
        EXPECT_EQ(gated.stm.park_polls, 0u);
        EXPECT_EQ(gated.stm.kind_switches, 0u);
        EXPECT_EQ(gated.stm.lock_migrations, 0u);
        EXPECT_EQ(gated.adaptive, nullptr);
    }
}

/** Park/unpark conservation: throttling may delay tasklets but must
 * never lose transactions — every tasklet finishes its full quota
 * (workload verify checks the array against the commit count too). */
TEST(AdaptivePark, ThrottleConservesTransactions)
{
    RunSpec spec = benchSpec(core::StmKind::TinyEtlWb, 16);
    spec.adaptive.enabled = true;
    spec.adaptive.epoch_cycles = 20000;
    spec.adaptive.tune_kind = false;
    spec.adaptive.tune_migration = false;

    const RunResult r = runB(spec, 40);
    EXPECT_EQ(r.stm.commits, 16u * 40u);
    EXPECT_GT(r.stm.park_polls, 0u) << "workload B at 16 tasklets must "
                                       "trigger the throttle";
    ASSERT_NE(r.adaptive, nullptr);
    for (const AdaptiveDecision &d : r.adaptive->decisions) {
        if (d.action == AdaptiveAction::ThrottleDown) {
            EXPECT_GE(static_cast<unsigned>(d.value),
                      spec.adaptive.min_tasklets);
            EXPECT_LT(static_cast<unsigned>(d.value), 16u);
        } else if (d.action == AdaptiveAction::ThrottleUp) {
            EXPECT_LE(static_cast<unsigned>(d.value), 16u);
        }
    }
}

/** Live kind switching stays serializable under randomized fault
 * plans: the workload's verify (inside runWorkload) recomputes the
 * array from the commit count and throws on any lost or phantom
 * update; injected aborts and acquire delays reshuffle interleavings
 * across seeds. */
TEST(AdaptiveSwitch, SerializableUnderRandomizedFaults)
{
    u64 switches = 0;
    for (u64 seed : {1, 7, 23}) {
        RunSpec spec = benchSpec(core::StmKind::NOrec, 8);
        spec.seed = seed;
        spec.adaptive.enabled = true;
        spec.adaptive.epoch_cycles = 20000;
        spec.adaptive.kind_candidates = {core::StmKind::NOrec,
                                         core::StmKind::TinyEtlWb,
                                         core::StmKind::VrEtlWb};
        spec.faults = sim::FaultPlan::parse(
            "seed=" + std::to_string(seed) + ";abort=60;acq-delay=120:96");

        const RunResult r = runB(spec, 40);
        EXPECT_EQ(r.stm.commits, 8u * 40u);
        switches += r.stm.kind_switches;
    }
    EXPECT_GT(switches, 0u) << "the explore phase alone must switch";
}

/** The serial-irrevocable fallback quiesces inside the inner STM's
 * start path, which would straddle a kind switch — the router must
 * refuse the combination outright. */
TEST(AdaptiveSwitch, SerialFallbackRejectedWithKindSwitching)
{
    RunSpec spec = benchSpec(core::StmKind::NOrec, 8);
    spec.adaptive.enabled = true;
    spec.adaptive.kind_candidates = {core::StmKind::NOrec,
                                     core::StmKind::TinyEtlWb};
    spec.serial_fallback_override = 4;
    EXPECT_THROW(runB(spec, 10), FatalError);
}

/** The whole control loop is part of the simulated machine: two runs
 * of the same spec produce the same cycles, stats, and decision log. */
TEST(AdaptiveSwitch, DecisionLogIsDeterministic)
{
    RunSpec spec = benchSpec(core::StmKind::NOrec, 8);
    spec.adaptive.enabled = true;
    spec.adaptive.epoch_cycles = 20000;
    spec.adaptive.kind_candidates = {core::StmKind::NOrec,
                                     core::StmKind::VrEtlWb};

    const RunResult a = runB(spec, 40);
    const RunResult b = runB(spec, 40);
    expectSameRun(a, b);
    ASSERT_NE(a.adaptive, nullptr);
    ASSERT_NE(b.adaptive, nullptr);
    EXPECT_EQ(a.adaptive->epochs, b.adaptive->epochs);
    EXPECT_EQ(a.adaptive->final_kind, b.adaptive->final_kind);
    ASSERT_EQ(a.adaptive->decisions.size(), b.adaptive->decisions.size());
    for (size_t i = 0; i < a.adaptive->decisions.size(); ++i) {
        const AdaptiveDecision &x = a.adaptive->decisions[i];
        const AdaptiveDecision &y = b.adaptive->decisions[i];
        EXPECT_EQ(x.epoch, y.epoch);
        EXPECT_EQ(x.cycle, y.cycle);
        EXPECT_EQ(x.action, y.action);
        EXPECT_EQ(x.value, y.value);
    }
}
