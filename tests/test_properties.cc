/**
 * @file
 * Property-based stress tests: randomized transaction mixes swept over
 * (STM kind x tasklet count x seed) with TEST_P, checking the
 * serializability-observable invariants that must hold for EVERY
 * interleaving — conservation sums, monotonic counters, snapshot
 * consistency, and undo exactness under injected user aborts.
 */

#include <gtest/gtest.h>

#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;
using pimstm::runtime::SharedArray32;

namespace
{

struct StressParam
{
    StmKind kind;
    unsigned tasklets;
    u64 seed;
};

std::string
stressName(const testing::TestParamInfo<StressParam> &info)
{
    std::string s = stmKindName(info.param.kind);
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    s += "_t" + std::to_string(info.param.tasklets);
    s += "_s" + std::to_string(info.param.seed);
    return s;
}

std::vector<StressParam>
stressParams()
{
    std::vector<StressParam> ps;
    for (StmKind k : allStmKinds()) {
        for (unsigned t : {3u, 11u})
            for (u64 seed : {1ull, 42ull})
                ps.push_back({k, t, seed});
    }
    return ps;
}

DpuConfig
dpuCfg(u64 seed)
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    cfg.seed = seed;
    return cfg;
}

class StmStress : public testing::TestWithParam<StressParam>
{
  protected:
    StmConfig
    stmCfg() const
    {
        StmConfig cfg;
        cfg.kind = GetParam().kind;
        cfg.num_tasklets = GetParam().tasklets;
        cfg.max_read_set = 128;
        cfg.max_write_set = 64;
        cfg.data_words_hint = 512;
        return cfg;
    }
};

} // namespace

TEST_P(StmStress, ConservationUnderRandomTransfers)
{
    // Random multi-hop transfers (2-4 accounts per tx) with injected
    // user aborts: the total must be exactly conserved.
    constexpr u32 kWords = 48;
    constexpr u32 kInitial = 500;

    Dpu dpu(dpuCfg(GetParam().seed), TimingConfig{});
    auto stm = makeStm(dpu, stmCfg());
    SharedArray32 arr(dpu, Tier::Mram, kWords);
    arr.fill(dpu, kInitial);

    dpu.addTasklets(GetParam().tasklets, [&](DpuContext &ctx) {
        for (int op = 0; op < 25; ++op) {
            const unsigned hops =
                static_cast<unsigned>(ctx.rng().range(2, 4));
            const bool inject_abort = ctx.rng().chance(0.1);
            int attempt = 0;
            atomically(*stm, ctx, [&](TxHandle &tx) {
                ++attempt;
                u32 prev = static_cast<u32>(ctx.rng().below(kWords));
                for (unsigned h = 1; h < hops; ++h) {
                    u32 next =
                        static_cast<u32>(ctx.rng().below(kWords));
                    if (next == prev)
                        next = (next + 1) % kWords;
                    const u32 a = tx.read(arr.at(prev));
                    const u32 b = tx.read(arr.at(next));
                    tx.write(arr.at(prev), a - 1);
                    tx.write(arr.at(next), b + 1);
                    prev = next;
                }
                if (inject_abort && attempt == 1)
                    tx.retry();
            });
        }
    });
    dpu.run();

    u64 total = 0;
    for (u32 i = 0; i < kWords; ++i)
        total += arr.peek(dpu, i);
    EXPECT_EQ(total, static_cast<u64>(kWords) * kInitial);
}

TEST_P(StmStress, SnapshotsAreAlwaysConsistent)
{
    // An array kept all-equal by writers; readers must never see two
    // differing cells inside one transaction.
    constexpr u32 kWords = 6;
    Dpu dpu(dpuCfg(GetParam().seed), TimingConfig{});
    auto stm = makeStm(dpu, stmCfg());
    SharedArray32 arr(dpu, Tier::Mram, kWords);
    arr.fill(dpu, 0);

    bool torn = false;
    dpu.addTasklets(GetParam().tasklets, [&](DpuContext &ctx) {
        for (int op = 0; op < 20; ++op) {
            if (ctx.taskletId() % 2 == 0) {
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    const u32 v = tx.read(arr.at(0)) + 1;
                    for (u32 w = 0; w < kWords; ++w)
                        tx.write(arr.at(w), v);
                });
            } else {
                u32 lo = 0, hi = 0;
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    lo = tx.read(arr.at(0));
                    hi = tx.read(arr.at(kWords - 1));
                });
                if (lo != hi)
                    torn = true;
            }
        }
    });
    dpu.run();
    EXPECT_FALSE(torn);
}

TEST_P(StmStress, MonotonicCounterNeverLosesTicks)
{
    Dpu dpu(dpuCfg(GetParam().seed), TimingConfig{});
    auto stm = makeStm(dpu, stmCfg());
    SharedArray32 arr(dpu, Tier::Mram, 2);
    arr.fill(dpu, 0);

    constexpr int kOps = 40;
    dpu.addTasklets(GetParam().tasklets, [&](DpuContext &ctx) {
        for (int op = 0; op < kOps; ++op) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                // Two cells that must move in lockstep.
                const u32 v = tx.read(arr.at(0));
                tx.write(arr.at(0), v + 1);
                tx.write(arr.at(1), v + 1);
            });
        }
    });
    dpu.run();
    EXPECT_EQ(arr.peek(dpu, 0), GetParam().tasklets * kOps);
    EXPECT_EQ(arr.peek(dpu, 1), GetParam().tasklets * kOps);
}

TEST_P(StmStress, DeterministicReplay)
{
    // Bit-identical behaviour on replay: same total cycles, same
    // commit/abort counters.
    auto run_once = [&] {
        Dpu dpu(dpuCfg(GetParam().seed), TimingConfig{});
        auto stm = makeStm(dpu, stmCfg());
        SharedArray32 arr(dpu, Tier::Mram, 16);
        arr.fill(dpu, 0);
        dpu.addTasklets(GetParam().tasklets, [&](DpuContext &ctx) {
            for (int op = 0; op < 15; ++op) {
                const u32 i = static_cast<u32>(ctx.rng().below(16));
                atomically(*stm, ctx, [&](TxHandle &tx) {
                    tx.write(arr.at(i), tx.read(arr.at(i)) + 1);
                });
            }
        });
        dpu.run();
        return std::make_tuple(dpu.stats().total_cycles,
                               stm->stats().commits,
                               stm->stats().aborts);
    };
    EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Sweep, StmStress,
                         testing::ValuesIn(stressParams()), stressName);
