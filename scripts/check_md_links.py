#!/usr/bin/env python3
"""Check intra-repo markdown links: files must exist, anchors must
resolve to a heading in the target file.

Usage: check_md_links.py [FILE_OR_DIR ...]   (default: README.md docs/)

Checks every inline link/image `[...](target)` outside fenced code
blocks. External targets (http/https/mailto) are skipped — CI must not
depend on the network. Relative targets are resolved against the
linking file; `#anchors` are matched against the target's headings
using GitHub's slug rules (lowercase; strip everything but
alphanumerics, spaces and hyphens; spaces become hyphens; duplicate
slugs get -1, -2, ... suffixes). Exits 1 and lists every broken link.
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_fences(text):
    """Yield (lineno, line) for lines outside fenced code blocks."""
    in_fence = False
    for i, line in enumerate(text.splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield i, line


def github_slug(heading):
    # Inline code/emphasis markers render away before slugging.
    heading = re.sub(r"[`*_]", "", heading)
    # Strip markdown links down to their text.
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    slug = []
    for ch in heading.lower():
        if ch.isalnum() or ch == "-":
            slug.append(ch)
        elif ch == " ":
            slug.append("-")
        # everything else is dropped
    return "".join(slug)


def anchors_of(path, cache={}):
    if path in cache:
        return cache[path]
    slugs = set()
    seen = {}
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        cache[path] = slugs
        return slugs
    for _, line in strip_fences(text):
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2).strip())
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = slugs
    return slugs


def check_file(md_path):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    for lineno, line in strip_fences(text):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(md_path), path_part))
                if not os.path.exists(dest):
                    errors.append((lineno, target, "file not found"))
                    continue
            else:
                dest = md_path
            if anchor and dest.endswith(".md"):
                if anchor not in anchors_of(dest):
                    errors.append(
                        (lineno, target, f"no heading for #{anchor} "
                         f"in {os.path.relpath(dest)}"))
    return errors


def collect(args):
    files = []
    for a in args:
        if os.path.isdir(a):
            for root, _, names in os.walk(a):
                files += [os.path.join(root, n) for n in sorted(names)
                          if n.endswith(".md")]
        else:
            files.append(a)
    return files


def main():
    targets = sys.argv[1:] or ["README.md", "docs"]
    failed = False
    checked = 0
    for md in collect(targets):
        checked += 1
        for lineno, target, why in check_file(md):
            print(f"{md}:{lineno}: broken link ({target}): {why}")
            failed = True
    if failed:
        sys.exit(1)
    print(f"OK: links in {checked} markdown files resolve")


if __name__ == "__main__":
    main()
