#!/usr/bin/env python3
"""Diff two --perf-json artifacts, gating on the simulated fields.

Usage: check_perf_json.py BASELINE.json FRESH.json

The simulated machine is deterministic, so the per-point simulated
cycle counts (and scheduler event counts) of a fresh run must match
the committed baseline exactly — any drift means a change altered
simulated behaviour, which this repo treats as a hard failure unless
the baseline is regenerated on purpose.

Host-side fields (wall_s, sim_cycles_per_wall_s, the "host" block,
the hand-written "baseline" block, hardware_threads) vary run to run
and machine to machine; they are reported but never gated.

Points are compared as a multiset keyed on (label, sim_cycles,
sched_switches, sched_elisions): labels legally repeat across sweep
workloads, and record order depends on host-thread completion order.
"""

import json
import sys
from collections import Counter

SIM_POINT_FIELDS = ("sim_cycles", "sched_switches", "sched_elisions")
SIM_TOTAL_FIELDS = ("sim_cycles", "sched_switches", "sched_elisions")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def point_key(p):
    return (p.get("label"),) + tuple(p.get(f) for f in SIM_POINT_FIELDS)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip().splitlines()[2])
    base_path, fresh_path = sys.argv[1], sys.argv[2]
    base, fresh = load(base_path), load(fresh_path)

    failures = []

    for field in SIM_TOTAL_FIELDS:
        b = base.get("totals", {}).get(field)
        f = fresh.get("totals", {}).get(field)
        if b != f:
            failures.append(f"totals.{field}: baseline {b} != fresh {f}")

    base_points = Counter(map(point_key, base.get("points", [])))
    fresh_points = Counter(map(point_key, fresh.get("points", [])))
    if base_points != fresh_points:
        only_base = base_points - fresh_points
        only_fresh = fresh_points - base_points
        for key, n in sorted(only_base.items())[:10]:
            failures.append(f"point only in baseline (x{n}): {key}")
        for key, n in sorted(only_fresh.items())[:10]:
            failures.append(f"point only in fresh (x{n}): {key}")
        more = max(len(only_base) - 10, 0) + max(len(only_fresh) - 10, 0)
        if more:
            failures.append(f"... and {more} more differing points")

    nb, nf = len(base.get("points", [])), len(fresh.get("points", []))
    if nb != nf:
        failures.append(f"point count: baseline {nb} != fresh {nf}")

    # The epoch controller's decision log is simulated state too: when
    # both artifacts carry an "adaptive" block it must match exactly
    # (docs/adaptive.md) — any drift means adaptation decisions changed.
    ba, fa = base.get("adaptive"), fresh.get("adaptive")
    if ba is not None and fa is not None and ba != fa:
        for field in ("epochs", "final_kind", "final_tasklet_limit",
                      "promotions", "demotions"):
            if ba.get(field) != fa.get(field):
                failures.append(f"adaptive.{field}: baseline "
                                f"{ba.get(field)} != fresh {fa.get(field)}")
        bd, fd = ba.get("decisions", []), fa.get("decisions", [])
        if bd != fd:
            failures.append(f"adaptive.decisions: baseline {len(bd)} "
                            f"decisions != fresh {len(fd)} (first "
                            f"divergence at index "
                            f"{next((i for i, (x, y) in enumerate(zip(bd, fd)) if x != y), min(len(bd), len(fd)))})")

    # The durable subsystem's counters are simulated state as well
    # (log bytes, fences, redo/undo decisions — docs/durability.md):
    # when both artifacts carry a "durable" block it must match exactly.
    b_dur, f_dur = base.get("durable"), fresh.get("durable")
    if b_dur is not None and f_dur is not None and b_dur != f_dur:
        for field in sorted(set(b_dur) | set(f_dur)):
            if b_dur.get(field) != f_dur.get(field):
                failures.append(f"durable.{field}: baseline "
                                f"{b_dur.get(field)} != fresh "
                                f"{f_dur.get(field)}")

    # The serving layer runs entirely on simulated time (arrival
    # clocks, batch budgets, histogram percentiles — docs/serving.md):
    # when both artifacts carry a "serving" block it must match
    # exactly. Any drift means admission, batching or backend cost
    # changed.
    b_srv, f_srv = base.get("serving"), fresh.get("serving")
    if b_srv is not None and f_srv is not None and b_srv != f_srv:
        for field in sorted(set(b_srv) | set(f_srv)):
            if b_srv.get(field) != f_srv.get(field):
                failures.append(f"serving.{field}: baseline "
                                f"{json.dumps(b_srv.get(field))[:200]} "
                                f"!= fresh "
                                f"{json.dumps(f_srv.get(field))[:200]}")

    # Host performance: informational only.
    bw = base.get("totals", {}).get("wall_s")
    fw = fresh.get("totals", {}).get("wall_s")
    if bw and fw:
        print(f"wall time (report only): baseline {bw:.3f}s, "
              f"fresh {fw:.3f}s ({bw / fw:.2f}x)")

    if failures:
        print(f"SIMULATED-FIELD MISMATCH between {base_path} and "
              f"{fresh_path}:")
        for line in failures:
            print(f"  {line}")
        print("If the simulated cost model changed intentionally, "
              "regenerate the baseline artifact.")
        print("Artifact schema (all fields, incl. the optional 'trace' "
              "block): docs/observability.md#perf-json-schema")
        sys.exit(1)
    print(f"OK: {nf} points, simulated fields identical")


if __name__ == "__main__":
    main()
