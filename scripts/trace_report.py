#!/usr/bin/env python3
"""Summarize PIM-STM observability artifacts in the terminal.

Usage:
  trace_report.py PERF.json [--top K]        # --perf-json artifact
  trace_report.py --trace TRACE.json [--top K]  # --trace-out file

With a --perf-json artifact (schema: docs/observability.md), prints
from its "trace" block:
  - the top-K hot locks (the contention heatmap, sorted by cycles
    burned waiting),
  - the abort-attribution table (counts per AbortReason, matching the
    "abort reasons:" line of the C++ printReport output),
  - the per-structure abort heatmap (counts per StructureId — which
    boosted/word structure the aborted transaction was operating on),
  - the boosted-library counters (abstract-lock acquires/waits,
    semantic undos, false conflicts avoided) when boosting ran,
  - the durable-transaction summary (log traffic, fences per commit,
    crash recoveries and what each recovery pass did) from the
    "durable" block (docs/durability.md) when --durable=on ran,
  - the log2 histograms (transaction latency, commit latency, and
    read/write-set size at commit),
  - the epoch-controller decision timeline from the "adaptive" block
    (docs/adaptive.md) when the bench ran with online adaptation,
  - the open-loop serving summary (per-scenario SLO percentiles,
    shed counts, throughput timeline, or the capacity-search result)
    from the "serving" block (docs/serving.md) written by
    bench/serve_kv.

With a --trace-out Perfetto file, prints per-track event counts, the
abort breakdown reconstructed from the "abort" instant events, and —
when the run crashed and recovered — a recovery timeline: each
"recovery" instant in time order with the durable commits that landed
since the previous recovery pass.
Ring-buffer drops mean a Perfetto file may undercount; the perf-json
aggregates never drop (they are counted outside the ring).
"""

import argparse
import json
import sys
from collections import Counter


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def bar(count, peak, width=40):
    if peak <= 0:
        return ""
    n = round(width * count / peak)
    return "#" * n


def print_histogram(name, h):
    print(f"{name}: count={h['count']} mean={h['mean']:.1f} "
          f"min={h['min']} max={h['max']}")
    buckets = h.get("buckets", [])
    peak = max((c for _, c in buckets), default=0)
    for low, count in buckets:
        print(f"  >= {low:>12}  {count:>10}  {bar(count, peak)}")


def report_durable(durable):
    """Durable-transaction summary (docs/durability.md)."""
    print("== durable transactions ==")
    commits = durable["durable_commits"]
    print(f"  durable commits: {commits}, "
          f"log appends: {durable['log_appends']}, "
          f"log bytes: {durable['log_bytes']}, "
          f"flush fences: {durable['flush_fences']}")
    if commits > 0:
        print(f"  per commit: {durable['flush_fences'] / commits:.2f} "
              f"fences, {durable['log_bytes'] / commits:.1f} log bytes")
    rec = durable["recoveries"]
    if rec == 0:
        print("  recoveries: 0 (no crash was delivered)")
        return
    print(f"  recoveries: {rec} — replayed {durable['log_redone']} "
          f"redo logs, rolled back {durable['log_undone']} undo logs, "
          f"discarded {durable['log_discarded']} incomplete logs, "
          f"detected {durable['torn_logs']} torn records")


def report_adaptive(adaptive):
    """Decision timeline of the epoch controller (docs/adaptive.md)."""
    print("== adaptive controller timeline ==")
    print(f"  epochs: {adaptive['epochs']}, "
          f"final kind: {adaptive['final_kind']}, "
          f"final tasklet limit: {adaptive['final_tasklet_limit']} "
          f"(0 = unthrottled)")
    print(f"  hot-lock migrations: {adaptive['promotions']} promoted, "
          f"{adaptive['demotions']} demoted")
    decisions = adaptive.get("decisions", [])
    if not decisions:
        print("  (no decisions — every epoch was within policy bands)")
        return
    actions = Counter(d["action"] for d in decisions)
    print("  decisions:"
          + "".join(f" {n}={c}" for n, c in actions.most_common()))
    for d in decisions:
        print(f"  @{d['cycle']:>12} epoch {d['epoch']:>5}  "
              f"{d['action']:<16} value={d['value']:g}")


def _serving_report_lines(rep, indent):
    """Render one runtime::ServingReport JSON object."""
    e2e = rep["e2e"]
    print(f"{indent}offered {rep['offered']}, completed "
          f"{rep['completed']}, shed {rep['shed']} "
          f"({rep['rounds']} rounds, {rep['batches']} batches)")
    print(f"{indent}throughput {rep['throughput_per_s']:.1f} req/s "
          f"over {rep['makespan_s'] * 1e3:.3f} ms, mean occupancy "
          f"{rep['mean_occupancy']:.3f}")
    print(f"{indent}e2e latency: p50 {e2e['p50_ns'] / 1e6:.3f} ms, "
          f"p99 {e2e['p99_ns'] / 1e6:.3f} ms, "
          f"p999 {e2e['p999_ns'] / 1e6:.3f} ms, "
          f"max {e2e['max_ns'] / 1e6:.3f} ms")
    shards = rep.get("shards", [])
    if shards:
        worst = max(shards, key=lambda s: s["p99_ns"])
        shedding = sum(1 for s in shards if s["shed"])
        print(f"{indent}{len(shards)} shards: worst shard p99 "
              f"{worst['p99_ns'] / 1e6:.3f} ms, peak queue "
              f"{max(s['peak_queue'] for s in shards)}, "
              f"{shedding} shard(s) shed")
    timeline = rep.get("timeline", [])
    if timeline:
        peak = max(t["completed"] for t in timeline)
        print(f"{indent}timeline (completed per window | window p99):")
        for t in timeline:
            print(f"{indent}  <= {t['t_end_s'] * 1e3:>9.3f} ms  "
                  f"{t['completed']:>7}  "
                  f"{bar(t['completed'], peak, 24):<24} "
                  f"p99 {t['p99_ns'] / 1e6:.3f} ms"
                  + (f"  shed {t['shed']}" if t["shed"] else ""))


def report_serving(serving):
    """Open-loop serving summary (docs/serving.md)."""
    print("== serving ==")
    if serving.get("mode") == "capacity":
        print(f"  capacity search, SLO: p99 <= "
              f"{serving['slo_p99_ms']:g} ms, zero shed")
        for c in serving.get("capacity", []):
            print(f"  {c['name']}: capacity "
                  f"{c['capacity_per_s']:.1f} req/s "
                  f"({c['probes']} probes); at capacity:")
            _serving_report_lines(c["at_capacity"], "    ")
        return
    for s in serving.get("scenarios", []):
        line = (f"  {s['name']} @ {s['rate_per_s']:.0f} req/s "
                f"offered")
        if s.get("adaptive_decisions"):
            line += (f" ({s['adaptive_decisions']} adaptive "
                     f"decisions)")
        print(line)
        _serving_report_lines(s["report"], "    ")


def report_perf_json(data, top_k):
    trace = data.get("trace")
    adaptive = data.get("adaptive")
    durable = data.get("durable")
    serving = data.get("serving")
    if trace is None:
        if durable is not None:
            report_durable(durable)
        if adaptive is not None:
            report_adaptive(adaptive)
        if serving is not None:
            report_serving(serving)
        if durable is not None or adaptive is not None \
                or serving is not None:
            return
        sys.exit("error: no 'trace', 'adaptive', 'durable' or "
                 "'serving' block in this artifact — rerun the bench "
                 "with --trace (see docs/observability.md), with "
                 "online adaptation (docs/adaptive.md), with "
                 "--durable=on (docs/durability.md), or use "
                 "bench/serve_kv (docs/serving.md)")

    print(f"trace: {trace['runs']} traced runs, "
          f"{trace['dropped']} ring-dropped records "
          f"(aggregates below never drop)")

    print(f"\n== top {top_k} hot locks (by wait cycles) ==")
    hot = trace.get("hot_locks", [])[:top_k]
    if not hot:
        print("  (no lock contention recorded)")
    for h in hot:
        print(f"  lock {h['lock']:>6}: {h['acquires']:>9} acquires, "
              f"{h['waits']:>9} waits, {h['wait_cycles']:>12} wait "
              f"cycles, {h['aborts_caused']:>9} aborts caused")

    print("\n== abort attribution ==")
    reasons = trace.get("aborts_by_reason", {})
    total = sum(reasons.values())
    if total == 0:
        print("  (no aborts)")
    for name, count in sorted(reasons.items(), key=lambda kv: -kv[1]):
        if count == 0:
            continue
        print(f"  {name:>18}: {count:>10} ({100.0 * count / total:.1f}%)")
    # Matches printReport's "abort reasons: name=count ..." line.
    nonzero = [(n, c) for n, c in reasons.items() if c]
    print("  abort reasons:"
          + "".join(f" {n}={c}" for n, c in nonzero))

    print("\n== aborts by structure ==")
    structs = trace.get("aborts_by_structure", {})
    s_total = sum(structs.values())
    if s_total == 0:
        print("  (no structure-attributed aborts)")
    peak = max(structs.values(), default=0)
    for name, count in sorted(structs.items(), key=lambda kv: -kv[1]):
        if count == 0:
            continue
        print(f"  {name:>18}: {count:>10} "
              f"({100.0 * count / s_total:.1f}%)  {bar(count, peak)}")

    boosted = data.get("boosted")
    if boosted:
        print("\n== boosted structure library ==")
        print(f"  abstract-lock acquires: {boosted['acquires']}")
        print(f"  waits:                  {boosted['waits']}")
        print(f"  semantic undos:         {boosted['semantic_undos']}")
        print(f"  false conflicts avoided: "
              f"{boosted['false_conflicts_avoided']}")

    print("\n== histograms (log2 buckets) ==")
    for key, label in (("tx_latency", "tx latency (cycles)"),
                       ("commit_latency", "commit latency (cycles)"),
                       ("read_set_size", "read-set size at commit"),
                       ("write_set_size", "write-set size at commit")):
        if key in trace:
            print_histogram(label, trace[key])
            print()

    if durable is not None:
        report_durable(durable)
        print()
    if adaptive is not None:
        report_adaptive(adaptive)
        print()
    if serving is not None:
        report_serving(serving)


def report_perfetto(events, top_k):
    if not isinstance(events, list):
        sys.exit("error: a --trace-out file is a JSON array of events")
    tracks = Counter()
    names = Counter()
    abort_reasons = Counter()
    durable_stream = {}  # pid -> file-ordered recovery/durable_commit
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        tracks[(e.get("pid"), e.get("tid"))] += 1
        name = e.get("name")  # "E" span-end events legally omit it
        if name is not None:
            names[name] += 1
        if ph == "i" and name == "abort":
            abort_reasons[e.get("args", {}).get("reason", "?")] += 1
        if ph == "i" and name in ("recovery", "durable_commit"):
            durable_stream.setdefault(e.get("pid"), []).append(e)

    print(f"{sum(tracks.values())} events on {len(tracks)} tracks")

    print(f"\n== top {top_k} event names ==")
    for name, count in names.most_common(top_k):
        print(f"  {name:>16}: {count}")

    print("\n== aborts by reason (ring sample — the ring drops oldest "
          "records; use the perf-json trace block for exact counts) ==")
    if not abort_reasons:
        print("  (no abort instants in the ring)")
    for name, count in abort_reasons.most_common():
        print(f"  {name:>18}: {count}")

    crashed_pids = [pid for pid, evs in sorted(durable_stream.items())
                    if any(e["name"] == "recovery" for e in evs)]
    if crashed_pids:
        # Each "recovery" instant marks one completed post-crash pass
        # (docs/durability.md): arg = logs replayed/rolled back, arg2 =
        # logs discarded as incomplete or torn. Every restart resets
        # the cycle clock, so incarnations are stitched by ring order
        # (insertion order), not by timestamp.
        print("\n== recovery timeline (per traced run) ==")
        for pid in crashed_pids:
            print(f"  pid {pid}:")
            banked = 0
            n = 0
            for e in durable_stream[pid]:
                if e["name"] == "durable_commit":
                    banked += 1
                    continue
                n += 1
                args = e.get("args", {})
                print(f"    crash #{n}: {banked} durable commits "
                      f"banked, then recovery replayed="
                      f"{args.get('arg', '?')} "
                      f"discarded={args.get('arg2', '?')}")
                banked = 0
            print(f"    final incarnation ran to completion with "
                  f"{banked} durable commits")

    print(f"\n== busiest {top_k} tracks ==")
    for (pid, tid), count in tracks.most_common(top_k):
        print(f"  pid {pid} tid {tid}: {count} events")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("file", help="--perf-json artifact (default) or "
                    "--trace-out file (with --trace)")
    ap.add_argument("--trace", action="store_true",
                    help="treat FILE as a --trace-out Perfetto file")
    ap.add_argument("--top", type=int, default=10, metavar="K",
                    help="rows per ranking table (default 10)")
    args = ap.parse_args()

    data = load(args.file)
    if args.trace:
        report_perfetto(data, args.top)
    else:
        report_perf_json(data, args.top)


if __name__ == "__main__":
    main()
